(* Branch-and-bound tests: known optima, exhaustive cross-checks against
   brute force, propagation, seeding. *)

let feq = Alcotest.(check (float 1e-6))

let v (x : Lp.Model.var) = Lp.Expr.var (x :> int)

let bb_status = Alcotest.testable
    (fun ppf s ->
      Format.pp_print_string ppf (Mip.Branch_bound.status_to_string s))
    ( = )

let heap_tests =
  [
    Alcotest.test_case "push/pop ordering" `Quick (fun () ->
        let h = Mip.Heap.create () in
        List.iter (fun k -> Mip.Heap.push h ~key:k (int_of_float k))
          [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
        Alcotest.(check (option (float 0.0))) "peek" (Some 1.0)
          (Mip.Heap.peek_key h);
        let order = List.init 5 (fun _ ->
            match Mip.Heap.pop h with Some (_, x) -> x | None -> -1) in
        Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] order;
        Alcotest.(check bool) "empty" true (Mip.Heap.is_empty h));
    Alcotest.test_case "fold visits all" `Quick (fun () ->
        let h = Mip.Heap.create () in
        for i = 1 to 10 do
          Mip.Heap.push h ~key:(float_of_int i) i
        done;
        let sum = Mip.Heap.fold (fun acc _ x -> acc + x) 0 h in
        Alcotest.(check int) "sum" 55 sum);
  ]

let heap_properties =
  let heap_of keys =
    let h = Mip.Heap.create () in
    List.iteri (fun i k -> Mip.Heap.push h ~key:k i) keys;
    h
  in
  let keys_gen = QCheck2.Gen.(list_size (0 -- 60) (float_range (-1e3) 1e3)) in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"heap pops keys in ascending order" ~count:200
         keys_gen
         (fun keys ->
           let h = heap_of keys in
           let popped =
             List.init (List.length keys) (fun _ ->
                 match Mip.Heap.pop h with
                 | Some (k, _) -> k
                 | None -> nan)
           in
           Mip.Heap.is_empty h
           && List.sort compare keys = popped));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"pop_k equals k repeated pops"
         ~count:200
         QCheck2.Gen.(pair keys_gen (0 -- 70))
         (fun (keys, k) ->
           let a = heap_of keys and b = heap_of keys in
           let via_pop_k = Mip.Heap.pop_k a k in
           let via_pops =
             List.filter_map
               (fun _ -> Mip.Heap.pop b)
               (List.init (min k (List.length keys)) Fun.id)
           in
           List.map fst via_pop_k = List.map fst via_pops
           && List.length via_pop_k = min k (List.length keys)
           && Mip.Heap.size a = List.length keys - List.length via_pop_k));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"fold conserves the stored elements" ~count:200
         keys_gen
         (fun keys ->
           let h = heap_of keys in
           let seen = Mip.Heap.fold (fun acc k v -> (k, v) :: acc) [] h in
           (* every pushed (key, payload) pair is visited exactly once *)
           List.sort compare seen
           = List.sort compare (List.mapi (fun i k -> (k, i)) keys)
           (* and folding does not consume the heap *)
           && Mip.Heap.size h = List.length keys));
  ]

let knapsack_model values weights capacity =
  let n = Array.length values in
  let m = Lp.Model.create () in
  let vars =
    Array.init n (fun i ->
        Lp.Model.add_var m ~kind:Lp.Model.Binary (Printf.sprintf "z%d" i))
  in
  Lp.Model.add_le m
    (Lp.Expr.of_terms
       (Array.to_list (Array.mapi (fun i (x : Lp.Model.var) -> ((x :> int), weights.(i))) vars)))
    capacity;
  Lp.Model.set_objective m Lp.Model.Maximize
    (Lp.Expr.of_terms
       (Array.to_list (Array.mapi (fun i (x : Lp.Model.var) -> ((x :> int), values.(i))) vars)));
  m

let brute_knapsack values weights capacity =
  let n = Array.length values in
  let best = ref 0.0 in
  for mask = 0 to (1 lsl n) - 1 do
    let w = ref 0.0 and value = ref 0.0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        w := !w +. weights.(i);
        value := !value +. values.(i)
      end
    done;
    if !w <= capacity +. 1e-9 && !value > !best then best := !value
  done;
  !best

let bb_tests =
  [
    Alcotest.test_case "integer infeasible equality" `Quick (fun () ->
        let m = Lp.Model.create () in
        let x = Lp.Model.add_var m ~ub:3.0 ~kind:Lp.Model.Integer "x" in
        let y = Lp.Model.add_var m ~ub:3.0 ~kind:Lp.Model.Integer "y" in
        Lp.Model.add_eq m (Lp.Expr.add (v x) (v y)) 1.5;
        Lp.Model.set_objective m Lp.Model.Minimize (v x);
        let r = Mip.Branch_bound.solve m in
        Alcotest.check bb_status "status" Mip.Branch_bound.Infeasible
          r.Mip.Branch_bound.status);
    Alcotest.test_case "pure LP passes through" `Quick (fun () ->
        let m = Lp.Model.create () in
        let x = Lp.Model.add_var m ~ub:2.5 "x" in
        Lp.Model.set_objective m Lp.Model.Maximize (v x);
        let r = Mip.Branch_bound.solve m in
        (match r.Mip.Branch_bound.objective with
        | Some o -> feq "obj" 2.5 o
        | None -> Alcotest.fail "no objective"));
    Alcotest.test_case "gap zero at optimality" `Quick (fun () ->
        let m = knapsack_model [| 10.; 13.; 7. |] [| 3.; 4.; 2. |] 6.0 in
        let r = Mip.Branch_bound.solve m in
        feq "gap" 0.0 r.Mip.Branch_bound.gap;
        (match r.Mip.Branch_bound.objective with
        | Some o -> feq "obj" 20.0 o
        | None -> Alcotest.fail "no objective");
        feq "bound" 20.0 r.Mip.Branch_bound.best_bound);
    Alcotest.test_case "general integers" `Quick (fun () ->
        (* max 3x + y st 2x + y <= 7.5, x <= 2.9, ints: x=2, y=3 -> 9
           (LP optimum x=2.9 is fractional, so branching is exercised) *)
        let m = Lp.Model.create () in
        let x = Lp.Model.add_var m ~ub:2.9 ~kind:Lp.Model.Integer "x" in
        let y = Lp.Model.add_var m ~ub:10.0 ~kind:Lp.Model.Integer "y" in
        Lp.Model.add_le m (Lp.Expr.add (Lp.Expr.scale 2.0 (v x)) (v y)) 7.5;
        Lp.Model.set_objective m Lp.Model.Maximize
          (Lp.Expr.add (Lp.Expr.scale 3.0 (v x)) (v y));
        let r = Mip.Branch_bound.solve m in
        (match r.Mip.Branch_bound.objective with
        | Some o -> feq "obj" 9.0 o
        | None -> Alcotest.fail "no objective"));
    Alcotest.test_case "seeding with a valid point" `Quick (fun () ->
        let m = knapsack_model [| 10.; 13.; 7. |] [| 3.; 4.; 2. |] 6.0 in
        (* seed with the optimal selection {b, c} *)
        let r = Mip.Branch_bound.solve ~initial:[| 0.0; 1.0; 1.0 |] m in
        (match r.Mip.Branch_bound.objective with
        | Some o -> feq "obj" 20.0 o
        | None -> Alcotest.fail "no objective"));
    Alcotest.test_case "invalid seed is ignored" `Quick (fun () ->
        let m = knapsack_model [| 10.; 13.; 7. |] [| 3.; 4.; 2. |] 6.0 in
        (* violates the capacity row *)
        let r = Mip.Branch_bound.solve ~initial:[| 1.0; 1.0; 1.0 |] m in
        (match r.Mip.Branch_bound.objective with
        | Some o -> feq "still optimal" 20.0 o
        | None -> Alcotest.fail "no objective"));
    Alcotest.test_case "node limit reported" `Quick (fun () ->
        let rng = Workload.Rng.create 17L in
        let n = 16 in
        let values = Array.init n (fun _ -> Workload.Rng.float_range rng 1.0 50.0) in
        let weights = Array.init n (fun _ -> Workload.Rng.float_range rng 1.0 20.0) in
        let m = knapsack_model values weights 50.0 in
        let params = { Mip.Branch_bound.default_params with node_limit = 3 } in
        let r = Mip.Branch_bound.solve ~params m in
        Alcotest.check bb_status "status" Mip.Branch_bound.Node_limit
          r.Mip.Branch_bound.status);
  ]

let bb_properties =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"B&B equals brute force on random knapsacks"
         ~count:30
         QCheck2.Gen.(int_bound 100_000)
         (fun seed ->
           let rng = Workload.Rng.create (Int64.of_int (seed + 5)) in
           let n = 3 + Workload.Rng.int rng 10 in
           let values =
             Array.init n (fun _ -> float_of_int (1 + Workload.Rng.int rng 40))
           in
           let weights =
             Array.init n (fun _ -> float_of_int (1 + Workload.Rng.int rng 15))
           in
           let capacity = float_of_int (5 + Workload.Rng.int rng 40) in
           let m = knapsack_model values weights capacity in
           let r = Mip.Branch_bound.solve m in
           match r.Mip.Branch_bound.objective with
           | Some o ->
             Float.abs (o -. brute_knapsack values weights capacity) < 1e-6
           | None -> false));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make
         ~name:"B&B equals brute force on random bounded IPs" ~count:25
         QCheck2.Gen.(int_bound 100_000)
         (fun seed ->
           (* max c x  st  A x <= b, x in {0,1,2}^n with random A (can be
              negative), checked exhaustively. *)
           let rng = Workload.Rng.create (Int64.of_int (seed + 55)) in
           let n = 2 + Workload.Rng.int rng 3 in
           let rows = 1 + Workload.Rng.int rng 3 in
           let a =
             Array.init rows (fun _ ->
                 Array.init n (fun _ ->
                     float_of_int (Workload.Rng.int rng 7 - 2)))
           in
           let b =
             Array.init rows (fun _ -> float_of_int (Workload.Rng.int rng 9))
           in
           let c =
             Array.init n (fun _ -> float_of_int (Workload.Rng.int rng 10))
           in
           let m = Lp.Model.create () in
           let vars =
             Array.init n (fun i ->
                 Lp.Model.add_var m ~ub:2.0 ~kind:Lp.Model.Integer
                   (Printf.sprintf "x%d" i))
           in
           Array.iteri
             (fun i row ->
               Lp.Model.add_le m
                 (Lp.Expr.of_terms
                    (Array.to_list
                       (Array.mapi (fun j (x : Lp.Model.var) -> ((x :> int), row.(j))) vars)))
                 b.(i))
             a;
           Lp.Model.set_objective m Lp.Model.Maximize
             (Lp.Expr.of_terms
                (Array.to_list
                   (Array.mapi (fun j (x : Lp.Model.var) -> ((x :> int), c.(j))) vars)));
           let r = Mip.Branch_bound.solve m in
           (* brute force over 3^n points *)
           let best = ref neg_infinity in
           let x = Array.make n 0 in
           let rec enum i =
             if i = n then begin
               let ok = ref true in
               Array.iteri
                 (fun row_i row ->
                   let act = ref 0.0 in
                   Array.iteri
                     (fun j coef -> act := !act +. (coef *. float_of_int x.(j)))
                     row;
                   if !act > b.(row_i) +. 1e-9 then ok := false)
                 a;
               if !ok then begin
                 let value = ref 0.0 in
                 Array.iteri
                   (fun j cj -> value := !value +. (cj *. float_of_int x.(j)))
                   c;
                 if !value > !best then best := !value
               end
             end
             else
               for d = 0 to 2 do
                 x.(i) <- d;
                 enum (i + 1)
               done
           in
           enum 0;
           match (r.Mip.Branch_bound.objective, !best) with
           | None, b -> b = neg_infinity
           | Some o, b -> Float.abs (o -. b) < 1e-6));
  ]

let propagate_tests =
  [
    Alcotest.test_case "detects row infeasibility" `Quick (fun () ->
        let m = Lp.Model.create () in
        let x = Lp.Model.add_var m ~ub:1.0 "x" in
        let y = Lp.Model.add_var m ~ub:1.0 "y" in
        Lp.Model.add_ge m (Lp.Expr.add (v x) (v y)) 3.0;
        let sf = Lp.Std_form.of_model m in
        let p = Mip.Propagate.prepare sf in
        let n = Lp.Std_form.n_total sf in
        let lb = Array.sub sf.Lp.Std_form.lb 0 n in
        let ub = Array.sub sf.Lp.Std_form.ub 0 n in
        (match Mip.Propagate.run p ~lb ~ub with
        | Mip.Propagate.Infeasible_node -> ()
        | Mip.Propagate.Tightened _ -> Alcotest.fail "expected infeasible"));
    Alcotest.test_case "fixes partners in an exactly-one row" `Quick (fun () ->
        let m = Lp.Model.create () in
        let x = Lp.Model.add_var m ~kind:Lp.Model.Binary "x" in
        let y = Lp.Model.add_var m ~kind:Lp.Model.Binary "y" in
        let z = Lp.Model.add_var m ~kind:Lp.Model.Binary "z" in
        Lp.Model.add_eq m (Lp.Expr.sum [ v x; v y; v z ]) 1.0;
        let sf = Lp.Std_form.of_model m in
        let p = Mip.Propagate.prepare sf in
        let n = Lp.Std_form.n_total sf in
        let lb = Array.sub sf.Lp.Std_form.lb 0 n in
        let ub = Array.sub sf.Lp.Std_form.ub 0 n in
        lb.(0) <- 1.0;  (* branch x = 1 *)
        (match Mip.Propagate.run p ~lb ~ub with
        | Mip.Propagate.Infeasible_node -> Alcotest.fail "should be feasible"
        | Mip.Propagate.Tightened changes ->
          Alcotest.(check bool) "some tightening" true (changes >= 2);
          feq "y fixed to 0" 0.0 ub.(1);
          feq "z fixed to 0" 0.0 ub.(2)));
    Alcotest.test_case "propagation preserves the integer optimum" `Quick
      (fun () ->
        let m = knapsack_model [| 10.; 13.; 7. |] [| 3.; 4.; 2. |] 6.0 in
        let sf = Lp.Std_form.of_model m in
        let p = Mip.Propagate.prepare sf in
        let n = Lp.Std_form.n_total sf in
        let lb = Array.sub sf.Lp.Std_form.lb 0 n in
        let ub = Array.sub sf.Lp.Std_form.ub 0 n in
        match Mip.Propagate.run p ~lb ~ub with
        | Mip.Propagate.Infeasible_node -> Alcotest.fail "feasible model"
        | Mip.Propagate.Tightened _ ->
          (* optimal point must still be inside the tightened box *)
          let opt = [| 0.0; 1.0; 1.0 |] in
          Array.iteri
            (fun j x ->
              Alcotest.(check bool) "within box" true
                (x >= lb.(j) -. 1e-9 && x <= ub.(j) +. 1e-9))
            opt);
  ]

(* Warm dual-simplex sessions are now the default for node LP re-solves.
   The search may take a different pivot path than cold re-solving every
   node from scratch, but on the seed TVNEP scenarios both must prove the
   same optimum: same status, same incumbent objective, same bound.  (The
   byte-identity of the work-clock tables across [--jobs] levels is
   covered separately by runtime.determinism.) *)
let warm_session_tests =
  [
    Alcotest.test_case "warm sessions match cold re-solves on seed scenarios"
      `Quick (fun () ->
        let scenarios =
          [
            (3L, 3, 1.0);
            (11L, 3, 2.0);
            (7L, 4, 1.5);
          ]
        in
        List.iter
          (fun (seed, num_requests, flexibility) ->
            let inst =
              Tvnep.Scenario.generate
                (Workload.Rng.create seed)
                { Tvnep.Scenario.scaled with num_requests; flexibility }
            in
            let run warm_sessions =
              Tvnep.Solver.run inst
                (Tvnep.Solver.Options.make
                   ~mip:
                     { Mip.Branch_bound.default_params with
                       time_limit = 60.0;
                       warm_sessions }
                   ())
            in
            let warm = run true and cold = run false in
            let tag fmt =
              Printf.sprintf "seed %Ld: %s" seed fmt
            in
            let solver_status =
              Alcotest.testable
                (fun ppf s ->
                  Format.pp_print_string ppf (Tvnep.Solver.status_to_string s))
                ( = )
            in
            Alcotest.check solver_status (tag "status") cold.Tvnep.Solver.status
              warm.Tvnep.Solver.status;
            Alcotest.(check (option (float 1e-6)))
              (tag "incumbent objective") cold.Tvnep.Solver.objective
              warm.Tvnep.Solver.objective;
            feq (tag "proved bound") cold.Tvnep.Solver.bound
              warm.Tvnep.Solver.bound)
          scenarios);
  ]

(* The synchronous-batch scheduler promises that [jobs] trades wall-clock
   time only: status, objective, proved bound, node count, LP iterations,
   structured stats and the deterministic work-clock total must all be
   identical at every jobs level.  These regressions pin that contract on
   searches that terminate each way (optimality, node limit, time
   limit). *)
let parallel_tests =
  let random_knapsack seed =
    let rng = Workload.Rng.create (Int64.of_int seed) in
    let n = 12 + Workload.Rng.int rng 5 in
    let values =
      Array.init n (fun _ -> float_of_int (1 + Workload.Rng.int rng 40))
    in
    let weights =
      Array.init n (fun _ -> float_of_int (1 + Workload.Rng.int rng 15))
    in
    let capacity = float_of_int (20 + Workload.Rng.int rng 40) in
    knapsack_model values weights capacity
  in
  (* Everything observable about a solve, including the shared clock. *)
  let fingerprint ?time_limit ?node_limit ~jobs m =
    let budget =
      Runtime.Budget.create ~deterministic:1e5 ?time_limit ?node_limit ()
    in
    let stats = Runtime.Stats.create () in
    let params = { Mip.Branch_bound.default_params with jobs } in
    let r = Mip.Branch_bound.solve ~params ~budget ~stats m in
    ( ( r.Mip.Branch_bound.status,
        r.Mip.Branch_bound.objective,
        r.Mip.Branch_bound.best_bound,
        r.Mip.Branch_bound.nodes,
        r.Mip.Branch_bound.lp_iterations ),
      ( Runtime.Budget.ticks budget,
        stats.Runtime.Stats.bb_nodes,
        stats.Runtime.Stats.simplex_iterations,
        stats.Runtime.Stats.lp_solves,
        stats.Runtime.Stats.incumbents ) )
  in
  let check_invariant ?time_limit ?node_limit seed =
    let m = random_knapsack seed in
    let base = fingerprint ?time_limit ?node_limit ~jobs:1 m in
    List.iter
      (fun jobs ->
        let got = fingerprint ?time_limit ?node_limit ~jobs m in
        if got <> base then
          Alcotest.failf "seed %d: jobs=%d diverges from jobs=1" seed jobs)
      [ 2; 4 ]
  in
  [
    Alcotest.test_case "jobs-invariant results on random knapsacks" `Quick
      (fun () -> List.iter check_invariant [ 1; 2; 3; 4; 5; 6; 7; 8 ]);
    Alcotest.test_case "jobs-invariant under a node limit" `Quick (fun () ->
        List.iter (check_invariant ~node_limit:5) [ 11; 12; 13 ]);
    Alcotest.test_case "jobs-invariant when the deterministic clock expires"
      `Quick (fun () ->
        (* The budget dies mid-search: a handful of nodes fit before the
           work-clock deadline, so the stop lands inside a batch. *)
        List.iter (check_invariant ~time_limit:0.2) [ 21; 22; 23 ]);
    Alcotest.test_case "autodetected jobs match jobs=1" `Quick (fun () ->
        let m = random_knapsack 31 in
        Alcotest.(check bool) "identical" true
          (fingerprint ~jobs:0 m = fingerprint ~jobs:1 m));
    Alcotest.test_case "jobs 1 vs 4 byte-identical on the contended c\xce\xa3 \
                        instance"
      `Slow (fun () ->
        (* The bnb bench's contended instance (several requests fighting
           for a small grid): real batches, warm session re-solves on all
           four workers, adaptive batch growth and the per-worker bound
           scratch all engaged.  A short deterministic clock keeps the
           search to a few rounds while still stopping mid-batch. *)
        let rng = Workload.Rng.create 23L in
        let inst =
          Tvnep.Scenario.generate rng
            { Tvnep.Scenario.scaled with num_requests = 8; flexibility = 2.0 }
        in
        let fm = Tvnep.Csigma_model.build inst in
        ignore (Tvnep.Objective.apply fm Tvnep.Objective.Access_control);
        let sf = Lp.Std_form.of_model fm.Tvnep.Formulation.model in
        let solve jobs =
          let budget =
            Runtime.Budget.create ~deterministic:2e9 ~time_limit:0.02 ()
          in
          let stats = Runtime.Stats.create () in
          let params = { Mip.Branch_bound.default_params with jobs } in
          let r = Mip.Branch_bound.solve_form ~params ~budget ~stats sf in
          ( ( Mip.Branch_bound.status_to_string r.Mip.Branch_bound.status,
              r.Mip.Branch_bound.objective,
              r.Mip.Branch_bound.best_bound,
              r.Mip.Branch_bound.nodes,
              r.Mip.Branch_bound.lp_iterations ),
            (Runtime.Budget.ticks budget, Runtime.Stats.to_string stats) )
        in
        let base = solve 1 in
        let par = solve 4 in
        if par <> base then
          Alcotest.failf "jobs=4 diverges from jobs=1 on the contended instance");
  ]

let suite =
  [
    ("mip.heap", heap_tests @ heap_properties);
    ("mip.branch_bound", bb_tests @ bb_properties);
    ("mip.propagate", propagate_tests);
    ("mip.warm_sessions", warm_session_tests);
    ("mip.parallel", parallel_tests);
  ]
