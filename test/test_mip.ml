(* Branch-and-bound tests: known optima, exhaustive cross-checks against
   brute force, propagation, seeding. *)

let feq = Alcotest.(check (float 1e-6))

let v (x : Lp.Model.var) = Lp.Expr.var (x :> int)

let bb_status = Alcotest.testable
    (fun ppf s ->
      Format.pp_print_string ppf (Mip.Branch_bound.status_to_string s))
    ( = )

let heap_tests =
  [
    Alcotest.test_case "push/pop ordering" `Quick (fun () ->
        let h = Mip.Heap.create () in
        List.iter (fun k -> Mip.Heap.push h ~key:k (int_of_float k))
          [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
        Alcotest.(check (option (float 0.0))) "peek" (Some 1.0)
          (Mip.Heap.peek_key h);
        let order = List.init 5 (fun _ ->
            match Mip.Heap.pop h with Some (_, x) -> x | None -> -1) in
        Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] order;
        Alcotest.(check bool) "empty" true (Mip.Heap.is_empty h));
    Alcotest.test_case "fold visits all" `Quick (fun () ->
        let h = Mip.Heap.create () in
        for i = 1 to 10 do
          Mip.Heap.push h ~key:(float_of_int i) i
        done;
        let sum = Mip.Heap.fold (fun acc _ x -> acc + x) 0 h in
        Alcotest.(check int) "sum" 55 sum);
  ]

let knapsack_model values weights capacity =
  let n = Array.length values in
  let m = Lp.Model.create () in
  let vars =
    Array.init n (fun i ->
        Lp.Model.add_var m ~kind:Lp.Model.Binary (Printf.sprintf "z%d" i))
  in
  Lp.Model.add_le m
    (Lp.Expr.of_terms
       (Array.to_list (Array.mapi (fun i (x : Lp.Model.var) -> ((x :> int), weights.(i))) vars)))
    capacity;
  Lp.Model.set_objective m Lp.Model.Maximize
    (Lp.Expr.of_terms
       (Array.to_list (Array.mapi (fun i (x : Lp.Model.var) -> ((x :> int), values.(i))) vars)));
  m

let brute_knapsack values weights capacity =
  let n = Array.length values in
  let best = ref 0.0 in
  for mask = 0 to (1 lsl n) - 1 do
    let w = ref 0.0 and value = ref 0.0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        w := !w +. weights.(i);
        value := !value +. values.(i)
      end
    done;
    if !w <= capacity +. 1e-9 && !value > !best then best := !value
  done;
  !best

let bb_tests =
  [
    Alcotest.test_case "integer infeasible equality" `Quick (fun () ->
        let m = Lp.Model.create () in
        let x = Lp.Model.add_var m ~ub:3.0 ~kind:Lp.Model.Integer "x" in
        let y = Lp.Model.add_var m ~ub:3.0 ~kind:Lp.Model.Integer "y" in
        Lp.Model.add_eq m (Lp.Expr.add (v x) (v y)) 1.5;
        Lp.Model.set_objective m Lp.Model.Minimize (v x);
        let r = Mip.Branch_bound.solve m in
        Alcotest.check bb_status "status" Mip.Branch_bound.Infeasible
          r.Mip.Branch_bound.status);
    Alcotest.test_case "pure LP passes through" `Quick (fun () ->
        let m = Lp.Model.create () in
        let x = Lp.Model.add_var m ~ub:2.5 "x" in
        Lp.Model.set_objective m Lp.Model.Maximize (v x);
        let r = Mip.Branch_bound.solve m in
        (match r.Mip.Branch_bound.objective with
        | Some o -> feq "obj" 2.5 o
        | None -> Alcotest.fail "no objective"));
    Alcotest.test_case "gap zero at optimality" `Quick (fun () ->
        let m = knapsack_model [| 10.; 13.; 7. |] [| 3.; 4.; 2. |] 6.0 in
        let r = Mip.Branch_bound.solve m in
        feq "gap" 0.0 r.Mip.Branch_bound.gap;
        (match r.Mip.Branch_bound.objective with
        | Some o -> feq "obj" 20.0 o
        | None -> Alcotest.fail "no objective");
        feq "bound" 20.0 r.Mip.Branch_bound.best_bound);
    Alcotest.test_case "general integers" `Quick (fun () ->
        (* max 3x + y st 2x + y <= 7.5, x <= 2.9, ints: x=2, y=3 -> 9
           (LP optimum x=2.9 is fractional, so branching is exercised) *)
        let m = Lp.Model.create () in
        let x = Lp.Model.add_var m ~ub:2.9 ~kind:Lp.Model.Integer "x" in
        let y = Lp.Model.add_var m ~ub:10.0 ~kind:Lp.Model.Integer "y" in
        Lp.Model.add_le m (Lp.Expr.add (Lp.Expr.scale 2.0 (v x)) (v y)) 7.5;
        Lp.Model.set_objective m Lp.Model.Maximize
          (Lp.Expr.add (Lp.Expr.scale 3.0 (v x)) (v y));
        let r = Mip.Branch_bound.solve m in
        (match r.Mip.Branch_bound.objective with
        | Some o -> feq "obj" 9.0 o
        | None -> Alcotest.fail "no objective"));
    Alcotest.test_case "seeding with a valid point" `Quick (fun () ->
        let m = knapsack_model [| 10.; 13.; 7. |] [| 3.; 4.; 2. |] 6.0 in
        (* seed with the optimal selection {b, c} *)
        let r = Mip.Branch_bound.solve ~initial:[| 0.0; 1.0; 1.0 |] m in
        (match r.Mip.Branch_bound.objective with
        | Some o -> feq "obj" 20.0 o
        | None -> Alcotest.fail "no objective"));
    Alcotest.test_case "invalid seed is ignored" `Quick (fun () ->
        let m = knapsack_model [| 10.; 13.; 7. |] [| 3.; 4.; 2. |] 6.0 in
        (* violates the capacity row *)
        let r = Mip.Branch_bound.solve ~initial:[| 1.0; 1.0; 1.0 |] m in
        (match r.Mip.Branch_bound.objective with
        | Some o -> feq "still optimal" 20.0 o
        | None -> Alcotest.fail "no objective"));
    Alcotest.test_case "node limit reported" `Quick (fun () ->
        let rng = Workload.Rng.create 17L in
        let n = 16 in
        let values = Array.init n (fun _ -> Workload.Rng.float_range rng 1.0 50.0) in
        let weights = Array.init n (fun _ -> Workload.Rng.float_range rng 1.0 20.0) in
        let m = knapsack_model values weights 50.0 in
        let params = { Mip.Branch_bound.default_params with node_limit = 3 } in
        let r = Mip.Branch_bound.solve ~params m in
        Alcotest.check bb_status "status" Mip.Branch_bound.Node_limit
          r.Mip.Branch_bound.status);
  ]

let bb_properties =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"B&B equals brute force on random knapsacks"
         ~count:30
         QCheck2.Gen.(int_bound 100_000)
         (fun seed ->
           let rng = Workload.Rng.create (Int64.of_int (seed + 5)) in
           let n = 3 + Workload.Rng.int rng 10 in
           let values =
             Array.init n (fun _ -> float_of_int (1 + Workload.Rng.int rng 40))
           in
           let weights =
             Array.init n (fun _ -> float_of_int (1 + Workload.Rng.int rng 15))
           in
           let capacity = float_of_int (5 + Workload.Rng.int rng 40) in
           let m = knapsack_model values weights capacity in
           let r = Mip.Branch_bound.solve m in
           match r.Mip.Branch_bound.objective with
           | Some o ->
             Float.abs (o -. brute_knapsack values weights capacity) < 1e-6
           | None -> false));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make
         ~name:"B&B equals brute force on random bounded IPs" ~count:25
         QCheck2.Gen.(int_bound 100_000)
         (fun seed ->
           (* max c x  st  A x <= b, x in {0,1,2}^n with random A (can be
              negative), checked exhaustively. *)
           let rng = Workload.Rng.create (Int64.of_int (seed + 55)) in
           let n = 2 + Workload.Rng.int rng 3 in
           let rows = 1 + Workload.Rng.int rng 3 in
           let a =
             Array.init rows (fun _ ->
                 Array.init n (fun _ ->
                     float_of_int (Workload.Rng.int rng 7 - 2)))
           in
           let b =
             Array.init rows (fun _ -> float_of_int (Workload.Rng.int rng 9))
           in
           let c =
             Array.init n (fun _ -> float_of_int (Workload.Rng.int rng 10))
           in
           let m = Lp.Model.create () in
           let vars =
             Array.init n (fun i ->
                 Lp.Model.add_var m ~ub:2.0 ~kind:Lp.Model.Integer
                   (Printf.sprintf "x%d" i))
           in
           Array.iteri
             (fun i row ->
               Lp.Model.add_le m
                 (Lp.Expr.of_terms
                    (Array.to_list
                       (Array.mapi (fun j (x : Lp.Model.var) -> ((x :> int), row.(j))) vars)))
                 b.(i))
             a;
           Lp.Model.set_objective m Lp.Model.Maximize
             (Lp.Expr.of_terms
                (Array.to_list
                   (Array.mapi (fun j (x : Lp.Model.var) -> ((x :> int), c.(j))) vars)));
           let r = Mip.Branch_bound.solve m in
           (* brute force over 3^n points *)
           let best = ref neg_infinity in
           let x = Array.make n 0 in
           let rec enum i =
             if i = n then begin
               let ok = ref true in
               Array.iteri
                 (fun row_i row ->
                   let act = ref 0.0 in
                   Array.iteri
                     (fun j coef -> act := !act +. (coef *. float_of_int x.(j)))
                     row;
                   if !act > b.(row_i) +. 1e-9 then ok := false)
                 a;
               if !ok then begin
                 let value = ref 0.0 in
                 Array.iteri
                   (fun j cj -> value := !value +. (cj *. float_of_int x.(j)))
                   c;
                 if !value > !best then best := !value
               end
             end
             else
               for d = 0 to 2 do
                 x.(i) <- d;
                 enum (i + 1)
               done
           in
           enum 0;
           match (r.Mip.Branch_bound.objective, !best) with
           | None, b -> b = neg_infinity
           | Some o, b -> Float.abs (o -. b) < 1e-6));
  ]

let propagate_tests =
  [
    Alcotest.test_case "detects row infeasibility" `Quick (fun () ->
        let m = Lp.Model.create () in
        let x = Lp.Model.add_var m ~ub:1.0 "x" in
        let y = Lp.Model.add_var m ~ub:1.0 "y" in
        Lp.Model.add_ge m (Lp.Expr.add (v x) (v y)) 3.0;
        let sf = Lp.Std_form.of_model m in
        let p = Mip.Propagate.prepare sf in
        let n = Lp.Std_form.n_total sf in
        let lb = Array.sub sf.Lp.Std_form.lb 0 n in
        let ub = Array.sub sf.Lp.Std_form.ub 0 n in
        (match Mip.Propagate.run p ~lb ~ub with
        | Mip.Propagate.Infeasible_node -> ()
        | Mip.Propagate.Tightened _ -> Alcotest.fail "expected infeasible"));
    Alcotest.test_case "fixes partners in an exactly-one row" `Quick (fun () ->
        let m = Lp.Model.create () in
        let x = Lp.Model.add_var m ~kind:Lp.Model.Binary "x" in
        let y = Lp.Model.add_var m ~kind:Lp.Model.Binary "y" in
        let z = Lp.Model.add_var m ~kind:Lp.Model.Binary "z" in
        Lp.Model.add_eq m (Lp.Expr.sum [ v x; v y; v z ]) 1.0;
        let sf = Lp.Std_form.of_model m in
        let p = Mip.Propagate.prepare sf in
        let n = Lp.Std_form.n_total sf in
        let lb = Array.sub sf.Lp.Std_form.lb 0 n in
        let ub = Array.sub sf.Lp.Std_form.ub 0 n in
        lb.(0) <- 1.0;  (* branch x = 1 *)
        (match Mip.Propagate.run p ~lb ~ub with
        | Mip.Propagate.Infeasible_node -> Alcotest.fail "should be feasible"
        | Mip.Propagate.Tightened changes ->
          Alcotest.(check bool) "some tightening" true (changes >= 2);
          feq "y fixed to 0" 0.0 ub.(1);
          feq "z fixed to 0" 0.0 ub.(2)));
    Alcotest.test_case "propagation preserves the integer optimum" `Quick
      (fun () ->
        let m = knapsack_model [| 10.; 13.; 7. |] [| 3.; 4.; 2. |] 6.0 in
        let sf = Lp.Std_form.of_model m in
        let p = Mip.Propagate.prepare sf in
        let n = Lp.Std_form.n_total sf in
        let lb = Array.sub sf.Lp.Std_form.lb 0 n in
        let ub = Array.sub sf.Lp.Std_form.ub 0 n in
        match Mip.Propagate.run p ~lb ~ub with
        | Mip.Propagate.Infeasible_node -> Alcotest.fail "feasible model"
        | Mip.Propagate.Tightened _ ->
          (* optimal point must still be inside the tightened box *)
          let opt = [| 0.0; 1.0; 1.0 |] in
          Array.iteri
            (fun j x ->
              Alcotest.(check bool) "within box" true
                (x >= lb.(j) -. 1e-9 && x <= ub.(j) +. 1e-9))
            opt);
  ]

(* Warm dual-simplex sessions are now the default for node LP re-solves.
   The search may take a different pivot path than cold re-solving every
   node from scratch, but on the seed TVNEP scenarios both must prove the
   same optimum: same status, same incumbent objective, same bound.  (The
   byte-identity of the work-clock tables across [--jobs] levels is
   covered separately by runtime.determinism.) *)
let warm_session_tests =
  [
    Alcotest.test_case "warm sessions match cold re-solves on seed scenarios"
      `Quick (fun () ->
        let scenarios =
          [
            (3L, 3, 1.0);
            (11L, 3, 2.0);
            (7L, 4, 1.5);
          ]
        in
        List.iter
          (fun (seed, num_requests, flexibility) ->
            let inst =
              Tvnep.Scenario.generate
                (Workload.Rng.create seed)
                { Tvnep.Scenario.scaled with num_requests; flexibility }
            in
            let run warm_sessions =
              Tvnep.Solver.solve inst
                { Tvnep.Solver.default_options with
                  mip =
                    { Mip.Branch_bound.default_params with
                      time_limit = 60.0;
                      warm_sessions } }
            in
            let warm = run true and cold = run false in
            let tag fmt =
              Printf.sprintf "seed %Ld: %s" seed fmt
            in
            Alcotest.check bb_status (tag "status") cold.Tvnep.Solver.status
              warm.Tvnep.Solver.status;
            Alcotest.(check (option (float 1e-6)))
              (tag "incumbent objective") cold.Tvnep.Solver.objective
              warm.Tvnep.Solver.objective;
            feq (tag "proved bound") cold.Tvnep.Solver.bound
              warm.Tvnep.Solver.bound)
          scenarios);
  ]

let suite =
  [
    ("mip.heap", heap_tests);
    ("mip.branch_bound", bb_tests @ bb_properties);
    ("mip.propagate", propagate_tests);
    ("mip.warm_sessions", warm_session_tests);
  ]
