(* Column generation for the link flows: the incremental-column LP API,
   the restricted master against the arc form, and the colgen stats in
   the outcome JSON.

   The load-bearing invariant is flow decomposition: every arc flow
   splits into simple paths (cycles only add load), so at convergence —
   pricing proves no path column can enter — the path master's LP
   optimum equals the full arc-form LP optimum.  The equivalence tests
   below pin exactly that. *)

module Solver = Tvnep.Solver
module Json = Statsutil.Json

let work_rate = 2e9

let det_budget ?(time_limit = 20.0) () =
  Runtime.Budget.create ~deterministic:work_rate ~time_limit ()

let scenario ?(k = 3) ?(flex = 1.0) seed =
  let rng = Workload.Rng.create seed in
  Tvnep.Scenario.generate rng
    { Tvnep.Scenario.scaled with num_requests = k; flexibility = flex }

let mip ?(jobs = 1) () =
  { Mip.Branch_bound.default_params with time_limit = 20.0; jobs }

let run_lp ?(colgen = Tvnep.Colgen_model.default_params) ?(jobs = 1) flow_form
    inst =
  Solver.run inst
    (Solver.Options.make ~method_:Solver.Lp_only ~flow_form ~colgen
       ~mip:(mip ~jobs ()) ~budget:(det_budget ()) ())

let run_exact ?(colgen = Tvnep.Colgen_model.default_params) ?(jobs = 1)
    flow_form inst =
  Solver.run inst
    (Solver.Options.make ~method_:Solver.Exact ~flow_form ~colgen
       ~mip:(mip ~jobs ()) ~budget:(det_budget ()) ())

let objective name (o : Solver.outcome) =
  match o.Solver.objective with
  | Some v -> v
  | None -> Alcotest.failf "%s: no objective (status %s)" name
              (Solver.status_to_string o.Solver.status)

(* A substrate where the hop-count seed path cannot carry the demand: one
   direct 0->1 link of capacity 1 against a two-hop detour 0->2->1 of
   capacity 5, and a single request with one virtual link of demand 2
   mapped onto hosts 0 and 1.  Seeded with k = 1 path, the restricted
   master can only accept half the request — pricing must discover the
   detour to close the gap to the arc form. *)
let bottleneck_instance () =
  let g = Graphs.Digraph.create 3 in
  ignore (Graphs.Digraph.add_edge g ~src:0 ~dst:1);
  ignore (Graphs.Digraph.add_edge g ~src:0 ~dst:2);
  ignore (Graphs.Digraph.add_edge g ~src:2 ~dst:1);
  let substrate =
    Tvnep.Substrate.make g ~node_cap:[| 10.0; 10.0; 10.0 |]
      ~link_cap:[| 1.0; 5.0; 5.0 |]
  in
  let rg =
    Graphs.Generators.star ~leaves:1 ~orientation:Graphs.Generators.From_center
  in
  let r =
    Tvnep.Request.make ~name:"a" ~graph:rg ~node_demand:[| 1.0; 1.0 |]
      ~link_demand:[| 2.0 |] ~duration:1.0 ~start_min:0.0 ~end_max:2.0
  in
  Tvnep.Instance.make ~node_mappings:[| [| 0; 1 |] |] ~substrate
    ~requests:[| r |] ~horizon:3.0 ()

let lp_column_tests =
  [
    Alcotest.test_case "Model.add_column == Std_form.append_columns" `Quick
      (fun () ->
        (* max x + 2y st x + y <= 4, x <= 3 — then add z with obj 3,
           entries in both rows.  Route one copy through the model-level
           splice and one through the standard-form splice: identical
           optima. *)
        let build () =
          let m = Lp.Model.create ~name:"cols" () in
          let x = Lp.Model.add_var m ~lb:0.0 ~ub:10.0 "x" in
          let y = Lp.Model.add_var m ~lb:0.0 ~ub:10.0 "y" in
          Lp.Model.add_le m
            (Lp.Expr.add (Lp.Expr.var (x :> int)) (Lp.Expr.var (y :> int)))
            4.0;
          Lp.Model.add_le m (Lp.Expr.var (x :> int)) 3.0;
          Lp.Model.set_objective m Lp.Model.Maximize
            (Lp.Expr.add (Lp.Expr.var (x :> int))
               (Lp.Expr.scale 2.0 (Lp.Expr.var (y :> int))));
          m
        in
        let via_model = build () in
        let _z =
          Lp.Model.add_column via_model ~lb:0.0 ~ub:10.0 ~obj:3.0 "z"
            [ (0, 1.0); (1, 1.0) ]
        in
        let a = Lp.Simplex.solve_model via_model in
        let sf = Lp.Std_form.of_model (build ()) in
        let sf =
          Lp.Std_form.append_columns sf
            [
              {
                Lp.Std_form.col_name = "z";
                col_cost = 3.0;
                col_lb = 0.0;
                col_ub = 10.0;
                col_entries = [ (0, 1.0); (1, 1.0) ];
              };
            ]
        in
        let b = Lp.Simplex.solve sf in
        Alcotest.(check (float 1e-9))
          "objective" a.Lp.Simplex.objective b.Lp.Simplex.objective;
        (* z enters both rows: z = 3 binds the second row, leaving y = 1
           in the first — objective 3·3 + 2·1 = 11. *)
        Alcotest.(check (float 1e-9)) "value" 11.0 a.Lp.Simplex.objective);
    Alcotest.test_case "session splice reuses the basis" `Quick (fun () ->
        let m = Lp.Model.create ~name:"warm" () in
        let x = Lp.Model.add_var m ~lb:0.0 ~ub:10.0 "x" in
        let y = Lp.Model.add_var m ~lb:0.0 ~ub:10.0 "y" in
        Lp.Model.add_le m
          (Lp.Expr.add (Lp.Expr.var (x :> int)) (Lp.Expr.var (y :> int)))
          4.0;
        Lp.Model.set_objective m Lp.Model.Maximize
          (Lp.Expr.add (Lp.Expr.var (x :> int))
             (Lp.Expr.scale 2.0 (Lp.Expr.var (y :> int))));
        let sf0 = Lp.Std_form.of_model m in
        let session = Lp.Simplex.create_session sf0 in
        let solve sf =
          Lp.Simplex.session_solve session ~lb:sf.Lp.Std_form.lb
            ~ub:sf.Lp.Std_form.ub ()
        in
        let r0 = solve sf0 in
        Alcotest.(check (float 1e-9)) "before" 8.0 r0.Lp.Simplex.objective;
        let sf1 =
          Lp.Simplex.session_add_columns session
            [
              {
                Lp.Std_form.col_name = "z";
                col_cost = 3.0;
                col_lb = 0.0;
                col_ub = 10.0;
                col_entries = [ (0, 1.0) ];
              };
            ]
        in
        Alcotest.(check int) "grew" (sf0.Lp.Std_form.n_struct + 1)
          sf1.Lp.Std_form.n_struct;
        let stats = Runtime.Stats.create () in
        let r1 =
          Lp.Simplex.session_solve session ~stats ~primal:true
            ~lb:sf1.Lp.Std_form.lb ~ub:sf1.Lp.Std_form.ub ()
        in
        Alcotest.(check (float 1e-9)) "after" 12.0 r1.Lp.Simplex.objective;
        (* The continuation must not pay a cold start: entering z and
           leaving y is one pivot's work, not a fresh phase 1. *)
        Alcotest.(check bool) "few pivots" true
          (stats.Runtime.Stats.simplex_iterations <= 3));
  ]

let colgen_tests =
  [
    Alcotest.test_case "pricing escapes the seed bottleneck" `Quick (fun () ->
        let inst = bottleneck_instance () in
        let starved =
          { Tvnep.Colgen_model.default_params with seed_paths = 1 }
        in
        let arc = run_lp Solver.Arc inst in
        let path = run_lp ~colgen:starved Solver.Path inst in
        let c = Option.get path.Solver.colgen in
        Alcotest.(check bool) "columns generated" true
          (c.Solver.columns_generated >= 1);
        Alcotest.(check bool) "converged" true c.Solver.colgen_converged;
        Alcotest.(check string) "optimal" "optimal"
          (Solver.status_to_string path.Solver.status);
        Alcotest.(check (float 1e-6))
          "master closes the arc-form gap"
          (objective "arc" arc) (objective "path" path));
    Alcotest.test_case "LP equivalence on seed scenarios" `Quick (fun () ->
        List.iter
          (fun (seed, k) ->
            let inst = scenario ~k seed in
            let arc = run_lp Solver.Arc inst in
            let path = run_lp Solver.Path inst in
            let name = Printf.sprintf "seed %Ld" seed in
            Alcotest.(check string) (name ^ " status") "optimal"
              (Solver.status_to_string path.Solver.status);
            Alcotest.(check bool) (name ^ " converged") true
              (Option.get path.Solver.colgen).Solver.colgen_converged;
            Alcotest.(check (float 1e-6))
              (name ^ " objective") (objective "arc" arc)
              (objective "path" path))
          [ (1L, 3); (5L, 4) ]);
    Alcotest.test_case "exact agrees with the arc form" `Quick (fun () ->
        let inst = scenario ~k:3 ~flex:1.5 7L in
        let arc = run_exact Solver.Arc inst in
        let path = run_exact Solver.Path inst in
        Alcotest.(check string) "status" "optimal"
          (Solver.status_to_string path.Solver.status);
        Alcotest.(check (float 1e-6))
          "objective" (objective "arc" arc) (objective "path" path);
        let sol = Option.get path.Solver.solution in
        Alcotest.(check bool) "feasible" true
          (Tvnep.Validator.is_feasible inst sol);
        (* Path-form solutions reconstruct per-vlink flows (fractions,
           same convention as the arc form) from the column registry; the
           validator already checked capacity and conservation, here we
           pin that every cross-host vlink of an accepted request lands a
           full unit at its destination host. *)
        let sub = inst.Tvnep.Instance.substrate in
        let sgraph = Tvnep.Substrate.graph sub in
        Array.iteri
          (fun i (a : Tvnep.Solution.assignment) ->
            if a.Tvnep.Solution.accepted then
              let r = Tvnep.Instance.request inst i in
              Array.iteri
                (fun lv flows ->
                  let hosts = a.Tvnep.Solution.node_map in
                  let e = Graphs.Digraph.edge r.Tvnep.Request.graph lv in
                  let src = hosts.(e.Graphs.Digraph.src)
                  and dst = hosts.(e.Graphs.Digraph.dst) in
                  if src <> dst then begin
                    let into = ref 0.0 in
                    List.iter
                      (fun (ls, frac) ->
                        let se = Graphs.Digraph.edge sgraph ls in
                        if se.Graphs.Digraph.dst = dst then into := !into +. frac;
                        if se.Graphs.Digraph.src = dst then into := !into -. frac)
                      flows;
                    Alcotest.(check (float 1e-6))
                      (Printf.sprintf "req %d vlink %d routed" i lv)
                      1.0 !into
                  end)
                a.Tvnep.Solution.link_flows)
          sol.Tvnep.Solution.assignments);
    Alcotest.test_case "generation is idempotent at the optimum" `Quick
      (fun () ->
        (* Pricing correctness from the public surface: once [generate]
           reports convergence, a second pass against the same duals must
           find nothing (every reduced cost is nonnegative). *)
        let inst = bottleneck_instance () in
        let cg =
          Tvnep.Colgen_model.build
            ~params:{ Tvnep.Colgen_model.default_params with seed_paths = 1 }
            inst
        in
        let budget = det_budget () in
        let r1 = Tvnep.Colgen_model.generate ~budget cg in
        Alcotest.(check bool) "first converges" true r1.Tvnep.Colgen_model.converged;
        let r2 = Tvnep.Colgen_model.generate ~budget cg in
        Alcotest.(check int) "nothing new" 0 r2.Tvnep.Colgen_model.generated;
        Alcotest.(check bool) "still converged" true
          r2.Tvnep.Colgen_model.converged;
        Alcotest.(check (float 1e-9))
          "same value" r1.Tvnep.Colgen_model.lp.Lp.Simplex.objective
          r2.Tvnep.Colgen_model.lp.Lp.Simplex.objective);
    Alcotest.test_case "jobs does not change the outcome" `Quick (fun () ->
        let inst = scenario ~k:4 3L in
        let a = run_exact ~jobs:1 Solver.Path inst in
        let b = run_exact ~jobs:4 Solver.Path inst in
        Alcotest.(check string) "json identical"
          (Json.to_string (Solver.outcome_to_json a))
          (Json.to_string (Solver.outcome_to_json b)));
    Alcotest.test_case "path form rejects missing prerequisites" `Quick
      (fun () ->
        let g = Graphs.Generators.grid ~rows:2 ~cols:2 in
        let substrate =
          Tvnep.Substrate.uniform g ~node_cap:10.0 ~link_cap:10.0
        in
        let rg =
          Graphs.Generators.star ~leaves:1
            ~orientation:Graphs.Generators.From_center
        in
        let r =
          Tvnep.Request.make ~name:"a" ~graph:rg ~node_demand:[| 1.0; 1.0 |]
            ~link_demand:[| 1.0 |] ~duration:1.0 ~start_min:0.0 ~end_max:2.0
        in
        let free =
          Tvnep.Instance.make ~substrate ~requests:[| r |] ~horizon:3.0 ()
        in
        Alcotest.check_raises "no mappings"
          (Invalid_argument
             "Colgen_model.build: path master requires fixed node mappings")
          (fun () ->
            ignore (run_lp Solver.Path free));
        let inst = scenario 1L in
        Alcotest.check_raises "csigma only"
          (Invalid_argument "Solver.run: flow_form Path requires the csigma model")
          (fun () ->
            ignore
              (Solver.run inst
                 (Solver.Options.make ~method_:Solver.Lp_only
                    ~kind:Solver.Delta ~flow_form:Solver.Path ()))));
  ]

let json_tests =
  [
    Alcotest.test_case "colgen stats round-trip" `Quick (fun () ->
        let inst = scenario ~k:3 1L in
        let o = run_exact Solver.Path inst in
        Alcotest.(check bool) "has stats" true (o.Solver.colgen <> None);
        match Solver.outcome_of_json (Solver.outcome_to_json o) with
        | Error e -> Alcotest.failf "decode failed: %s" e
        | Ok o' ->
          Alcotest.(check bool) "colgen equal" true
            (o.Solver.colgen = o'.Solver.colgen);
          Alcotest.(check string) "re-encode identical"
            (Json.to_string (Solver.outcome_to_json o))
            (Json.to_string (Solver.outcome_to_json o')));
    Alcotest.test_case "pre-colgen documents still decode" `Quick (fun () ->
        (* Same schema version, field absent entirely — an old writer's
           output must decode to [colgen = None]. *)
        let inst = scenario ~k:3 1L in
        let o = run_exact Solver.Arc inst in
        let doc =
          match Solver.outcome_to_json o with
          | Json.Obj fields ->
            Json.Obj (List.filter (fun (k, _) -> k <> "colgen") fields)
          | _ -> Alcotest.fail "object expected"
        in
        Alcotest.(check bool) "fixture lacks the field" true
          (Json.member "colgen" doc = None);
        match Solver.outcome_of_json doc with
        | Error e -> Alcotest.failf "decode failed: %s" e
        | Ok o' ->
          Alcotest.(check bool) "colgen absent" true (o'.Solver.colgen = None);
          Alcotest.(check (option (float 1e-9)))
            "objective survives" o.Solver.objective o'.Solver.objective);
  ]

let suite =
  [
    ("colgen.lp", lp_column_tests);
    ("colgen.master", colgen_tests);
    ("colgen.json", json_tests);
  ]
