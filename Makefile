.PHONY: all build test bench-smoke bench-micro bench-bnb bench-service \
	bench-profile bench-colgen doc check clean

all: build

build:
	dune build

test: build
	dune runtest

# Fast end-to-end smoke of the parallel bench harness: Figure 3 only,
# quick scale, two worker domains, deterministic work clock (the default,
# so the tables are reproducible byte for byte).
bench-smoke: build
	dune exec bench/main.exe -- --quick --figures 3 --jobs 2 \
	  --no-ablations --no-micro --no-bnb --no-service --no-profile \
	  --no-colgen

# Deterministic simplex micro bench; writes BENCH_simplex.json (per-case
# iterations, pivots, work-clock ticks, wall time) and exits nonzero when
# the emitted file fails validation, so CI catches a malformed bench file.
bench-micro: build
	dune exec bench/main.exe -- --no-figures --no-ablations --no-bnb \
	  --no-service --no-profile --no-colgen

# Parallel branch-and-bound gate: solves the same contended cΣ search at
# jobs 1, 2 and 4 on the deterministic work clock, fails if any level's
# (status, objective, bound, nodes, iters, ticks) differs from jobs=1 or
# (on >= 4-core hosts) jobs=4 is < 2x faster, and writes BENCH_bnb.json.
bench-bnb: build
	dune exec bench/main.exe -- --no-figures --no-ablations --no-micro \
	  --no-service --no-profile --no-colgen

# Online service gate: serves one churn stream (arrivals + departures)
# at jobs 1, 2 and 4 on the deterministic work clock.  Fails if any
# decision, rung, schedule, migration, tick count or the revenue
# differs across jobs levels, if fewer than 30% of the arrivals depart
# inside the stream, if ignoring departures does not strictly lose
# admissions and revenue, if any rung (exact, greedy, budget, and
# priced on the dedicated pricing run) never fired, if the rounding
# ablation regresses (the Rounded chain must decide arrivals at the
# rounded rung, admit >= the greedy-only chain, spend <= the exact
# chain's ticks, and be byte-identical at jobs 1/2/4), or if any run's
# committed state fails the validator; writes BENCH_service.json
# (schema tvnep-bench-service/4, validated after writing — documents
# without the rounding comparison are rejected).
bench-service: build
	dune exec bench/main.exe -- --no-figures --no-ablations --no-micro \
	  --no-bnb --no-profile --no-colgen

# Profiling smoke gate: the contended cΣ solve with a span recorder
# attached, at jobs 1 and 4.  Fails if profiling perturbs the solve, the
# recorder is unbalanced, spans do not nest, per-phase self ticks do not
# sum to the solve's work ticks, an export fails to parse back, or the
# exported spans (domain tags zeroed) differ across jobs levels.
bench-profile: build
	dune exec bench/main.exe -- --no-figures --no-ablations --no-micro \
	  --no-bnb --no-service --no-colgen

# Column-generation gate: the path-form restricted master vs the arc-form
# LP on a ~10x substrate (9x10 grid, 8-vlink requests), deterministic
# work clock.  Fails unless the converged master matches the arc LP
# objective, costs strictly fewer work ticks, keeps its flow columns
# <= 20% of the arc form's, and is byte-identical at jobs 1 and 4;
# writes and validates BENCH_colgen.json.
bench-colgen: build
	dune exec bench/main.exe -- --no-figures --no-ablations --no-micro \
	  --no-bnb --no-service --no-profile

# API documentation via odoc, when the toolchain has it; a clean skip
# otherwise (the docs below are the odoc comments in the .mli files).
# Under `make check` this is a hard gate whenever odoc is installed: a
# doc-comment syntax error fails the build instead of rotting silently.
doc:
	@if command -v odoc >/dev/null 2>&1; then \
	  dune build @doc && \
	  echo "docs: _build/default/_doc/_html/index.html"; \
	else \
	  echo "odoc not installed; skipping HTML docs (the .mli files carry \
	the same documentation)"; \
	fi

check: build test doc bench-smoke bench-micro bench-bnb bench-service \
	bench-profile bench-colgen

clean:
	dune clean
