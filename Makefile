.PHONY: all build test bench-smoke bench-micro check clean

all: build

build:
	dune build

test: build
	dune runtest

# Fast end-to-end smoke of the parallel bench harness: Figure 3 only,
# quick scale, two worker domains, deterministic work clock (the default,
# so the tables are reproducible byte for byte).
bench-smoke: build
	dune exec bench/main.exe -- --quick --figures 3 --jobs 2 \
	  --no-ablations --no-micro

# Deterministic simplex micro bench; writes BENCH_simplex.json (per-case
# iterations, pivots, work-clock ticks, wall time) and exits nonzero when
# the emitted file fails validation, so CI catches a malformed bench file.
bench-micro: build
	dune exec bench/main.exe -- --no-figures --no-ablations

check: build test bench-smoke bench-micro

clean:
	dune clean
