.PHONY: all build test bench-smoke check clean

all: build

build:
	dune build

test: build
	dune runtest

# Fast end-to-end smoke of the parallel bench harness: Figure 3 only,
# quick scale, two worker domains, deterministic work clock (the default,
# so the tables are reproducible byte for byte).
bench-smoke: build
	dune exec bench/main.exe -- --quick --figures 3 --jobs 2 \
	  --no-ablations --no-micro

check: build test bench-smoke

clean:
	dune clean
