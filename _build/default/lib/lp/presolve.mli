(** Model-level presolve.

    Standard reductions applied before compiling a model:

    - {b fixed variables} ([lb = ub]) are substituted into every row and
      the objective;
    - {b singleton rows} (one remaining variable) become bounds on that
      variable and are dropped — possibly fixing it and cascading;
    - {b empty rows} are checked for consistency and removed.

    Reductions iterate to a fixpoint.  The result carries a
    [restore] mapping that lifts a solution of the reduced model back to
    the original variable space, so callers can present solutions in the
    coordinates they built.  Objective values are preserved exactly (the
    constant contribution of fixed variables moves into the reduced
    objective's offset). *)

type t = {
  reduced : Model.t;
  var_map : int array;
      (** original variable id → reduced id, or [-1] when eliminated *)
  fixed_value : float array;
      (** value of each original variable if eliminated (0 otherwise) *)
  rows_kept : int;
  rows_dropped : int;
  vars_fixed : int;
}

type outcome =
  | Infeasible  (** presolve proved the model infeasible *)
  | Reduced of t

val presolve : Model.t -> outcome
(** The input model is not modified. *)

val restore : t -> float array -> float array
(** [restore p x_reduced] is the solution in the original variable space;
    [x_reduced] must have the reduced model's arity. *)
