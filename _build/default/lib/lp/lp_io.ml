let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '!' | '#' -> c
      | _ -> '_')
    name

let var_name m v = sanitize (Model.var_name m (Model.var_of_id m v))

let pp_terms buf m e =
  let first = ref true in
  List.iter
    (fun (v, c) ->
      if !first then begin
        Buffer.add_string buf (Printf.sprintf "%g %s" c (var_name m v));
        first := false
      end
      else if c >= 0.0 then
        Buffer.add_string buf (Printf.sprintf " + %g %s" c (var_name m v))
      else
        Buffer.add_string buf
          (Printf.sprintf " - %g %s" (Float.abs c) (var_name m v)))
    (Expr.terms e);
  if !first then Buffer.add_string buf "0"

let to_string m =
  let buf = Buffer.create 4096 in
  let sense, obj = Model.objective m in
  Buffer.add_string buf
    (match sense with
    | Model.Minimize -> "Minimize\n obj: "
    | Model.Maximize -> "Maximize\n obj: ");
  pp_terms buf m obj;
  Buffer.add_string buf "\nSubject To\n";
  List.iteri
    (fun i (r : Model.row) ->
      let name = sanitize r.Model.row_name in
      let emit suffix op rhs =
        Buffer.add_string buf (Printf.sprintf " %s%s: " name suffix);
        pp_terms buf m r.Model.expr;
        Buffer.add_string buf (Printf.sprintf " %s %g\n" op rhs)
      in
      ignore i;
      if r.Model.lo = r.Model.hi then emit "" "=" r.Model.lo
      else begin
        if r.Model.hi < infinity then emit "" "<=" r.Model.hi;
        if r.Model.lo > neg_infinity then emit "_lo" ">=" r.Model.lo
      end)
    (Model.rows m);
  Buffer.add_string buf "Bounds\n";
  for v = 0 to Model.num_vars m - 1 do
    let hv = Model.var_of_id m v in
    let lb = Model.var_lb m hv and ub = Model.var_ub m hv in
    let name = var_name m v in
    if lb = neg_infinity && ub = infinity then
      Buffer.add_string buf (Printf.sprintf " %s free\n" name)
    else if lb = ub then
      Buffer.add_string buf (Printf.sprintf " %s = %g\n" name lb)
    else begin
      if lb <> 0.0 && lb > neg_infinity then
        Buffer.add_string buf (Printf.sprintf " %g <= %s\n" lb name)
      else if lb = neg_infinity then
        Buffer.add_string buf (Printf.sprintf " -inf <= %s\n" name);
      if ub < infinity then
        Buffer.add_string buf (Printf.sprintf " %s <= %g\n" name ub)
    end
  done;
  let general, binary =
    List.partition
      (fun v -> Model.var_kind m v = Model.Integer)
      (Model.integer_vars m)
  in
  if general <> [] then begin
    Buffer.add_string buf "General\n";
    List.iter
      (fun (v : Model.var) ->
        Buffer.add_string buf (Printf.sprintf " %s\n" (var_name m (v :> int))))
      general
  end;
  if binary <> [] then begin
    Buffer.add_string buf "Binary\n";
    List.iter
      (fun (v : Model.var) ->
        Buffer.add_string buf (Printf.sprintf " %s\n" (var_name m (v :> int))))
      binary
  end;
  Buffer.add_string buf "End\n";
  Buffer.contents buf

let save path m =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string m))
