(** CPLEX-LP-format writer.

    Dumps a {!Model.t} in the ubiquitous `.lp` text format so models can
    be inspected by hand or cross-checked with external solvers when one
    is available.  Only writing is supported — the repository's own solver
    consumes models directly. *)

val to_string : Model.t -> string
(** Sections: Maximize/Minimize, Subject To (ranged rows are split into
    two inequalities), Bounds (free/fixed/one-sided all handled), General
    and Binary.  Variable names are sanitized to the LP-format character
    set (offending characters become '_'); names are assumed distinct
    after sanitization. *)

val save : string -> Model.t -> unit
(** @raise Sys_error on I/O failure. *)
