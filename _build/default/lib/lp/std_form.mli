(** Computational standard form.

    A {!Model.t} is compiled once into
    [minimize cᵀx  s.t.  A·x = 0,  lb <= x <= ub]
    where [x] stacks the structural variables followed by one logical
    variable per row: the row [lo <= e <= hi] becomes [e - y = 0] with
    [y ∈ [lo, hi]].  A maximization objective is negated ([obj_factor]
    restores the user-facing value).

    The MIP search reuses one compiled form for every node, overriding
    structural bounds per node. *)

type t = {
  n_struct : int;  (** number of structural columns *)
  n_rows : int;    (** number of rows = number of logical columns *)
  a : Lina.Csc.t;  (** [n_rows × (n_struct + n_rows)]; logical part is -I *)
  cost : float array;  (** length [n_struct + n_rows]; zero on logicals *)
  lb : float array;    (** length [n_struct + n_rows] *)
  ub : float array;
  obj_const : float;
  obj_factor : float;  (** +1 for minimize, -1 for maximize *)
  integer : bool array;      (** length [n_struct] *)
  var_names : string array;  (** length [n_struct] *)
  row_names : string array;
}

val of_model : Model.t -> t

val n_total : t -> int
(** [n_struct + n_rows]. *)

val user_objective : t -> float -> float
(** Maps an internal (minimization) objective value back to the model's
    objective sense and offset. *)

val row_activity : t -> float array -> float array
(** [row_activity sf x] evaluates all rows on structural values [x]
    (length [n_struct]). *)

val is_feasible_point :
  ?tol:float -> t -> ?lb:float array -> ?ub:float array -> float array -> bool
(** Checks structural bounds and row ranges on a candidate structural
    point; [?lb]/[?ub] override structural bounds (as in a MIP node). *)
