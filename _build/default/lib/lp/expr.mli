(** Linear expressions over integer variable ids.

    An expression is a finite map from variable id to coefficient plus a
    constant term.  This is the currency of the modeling layer: objective
    functions and constraint left-hand sides are expressions. *)

type t

val zero : t

val const : float -> t

val var : ?coeff:float -> int -> t
(** [var v] is the expression [1.0 * x_v]; [~coeff] scales it. *)

val of_terms : ?const:float -> (int * float) list -> t
(** Sums duplicate variables. *)

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val add_term : t -> int -> float -> t
(** [add_term e v c] is [e + c * x_v]. *)

val add_const : t -> float -> t

val sum : t list -> t

val coeff : t -> int -> float

val constant : t -> float

val terms : t -> (int * float) list
(** Non-zero terms in increasing variable order. *)

val num_terms : t -> int

val eval : t -> (int -> float) -> float
(** [eval e value_of] substitutes variable values. *)

val map_vars : (int -> int) -> t -> t
(** Renames variables (merging coefficients on collision). *)

val pp : ?name:(int -> string) -> unit -> Format.formatter -> t -> unit
(** Pretty-printer; [~name] customizes how variable ids render. *)
