lib/lp/simplex.ml: Array Float Lina Std_form Unix
