lib/lp/model.ml: Array Expr Float Format List Printf
