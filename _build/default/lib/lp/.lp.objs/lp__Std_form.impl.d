lib/lp/std_form.ml: Array Expr Float Lina List Model
