lib/lp/lp_io.ml: Buffer Expr Float Fun List Model Printf String
