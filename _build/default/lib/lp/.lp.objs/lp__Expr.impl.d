lib/lp/expr.ml: Float Format Int Lina List Map Printf
