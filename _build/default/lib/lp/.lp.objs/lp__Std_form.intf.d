lib/lp/std_form.mli: Lina Model
