lib/lp/simplex.mli: Model Std_form
