lib/lp/presolve.ml: Array Expr Float Lina List Model
