type t = {
  reduced : Model.t;
  var_map : int array;
  fixed_value : float array;
  rows_kept : int;
  rows_dropped : int;
  vars_fixed : int;
}

type outcome = Infeasible | Reduced of t

exception Proved_infeasible

let tol = Lina.Tol.feas

(* Working copies of bounds plus a fixed? flag per variable. *)
type work = {
  lb : float array;
  ub : float array;
  mutable live_rows : (string * Expr.t * float * float) list;  (* reversed *)
  mutable dropped : int;
}

let tighten w v ~lo ~hi =
  if lo > w.lb.(v) then w.lb.(v) <- lo;
  if hi < w.ub.(v) then w.ub.(v) <- hi;
  if w.lb.(v) > w.ub.(v) +. (tol *. Float.max 1.0 (Float.abs w.lb.(v))) then
    raise Proved_infeasible;
  (* Collapse micro-crossings from round-off. *)
  if w.lb.(v) > w.ub.(v) then begin
    let mid = 0.5 *. (w.lb.(v) +. w.ub.(v)) in
    w.lb.(v) <- mid;
    w.ub.(v) <- mid
  end

let is_fixed w v = w.lb.(v) = w.ub.(v)

(* Substitutes all currently-fixed variables out of an expression,
   returning the cleaned expression (constant folded in). *)
let substitute w e =
  List.fold_left
    (fun acc (v, c) ->
      if is_fixed w v then Expr.add_const acc (c *. w.lb.(v))
      else Expr.add_term acc v c)
    (Expr.const (Expr.constant e))
    (Expr.terms e)

let presolve model =
  let n = Model.num_vars model in
  let w =
    {
      lb = Array.init n (fun v -> Model.var_lb model (Model.var_of_id model v));
      ub = Array.init n (fun v -> Model.var_ub model (Model.var_of_id model v));
      live_rows = [];
      dropped = 0;
    }
  in
  let integer =
    Array.init n (fun v ->
        match Model.var_kind model (Model.var_of_id model v) with
        | Model.Integer | Model.Binary -> true
        | Model.Continuous -> false)
  in
  try
    (* Fixpoint over rows: each pass substitutes currently-fixed variables
       and converts singleton/empty rows. *)
    let pending = ref (Model.rows model) in
    let progress = ref true in
    while !progress do
      progress := false;
      let remaining = ref [] in
      List.iter
        (fun (r : Model.row) ->
          let e = substitute w r.Model.expr in
          let c = Expr.constant e in
          let lo = r.Model.lo -. c and hi = r.Model.hi +. 0.0 -. c in
          match Expr.terms e with
          | [] ->
            (* Empty row: consistency check, then drop. *)
            if 0.0 < lo -. tol *. Float.max 1.0 (Float.abs lo)
               || 0.0 > hi +. (tol *. Float.max 1.0 (Float.abs hi))
            then raise Proved_infeasible;
            w.dropped <- w.dropped + 1;
            progress := true
          | [ (v, a) ] ->
            (* Singleton row: fold into the variable's bounds. *)
            let lo', hi' =
              if a > 0.0 then (lo /. a, hi /. a) else (hi /. a, lo /. a)
            in
            let lo' = if integer.(v) then Float.ceil (lo' -. 1e-6) else lo' in
            let hi' = if integer.(v) then Float.floor (hi' +. 1e-6) else hi' in
            tighten w v ~lo:lo' ~hi:hi';
            w.dropped <- w.dropped + 1;
            progress := true
          | _ :: _ :: _ ->
            remaining :=
              (r.Model.row_name, Expr.add_const e (-.c), lo, hi) :: !remaining)
        !pending;
      pending :=
        List.rev_map (fun (name, e, lo, hi) ->
            { Model.row_name = name; expr = e; lo; hi })
          !remaining
    done;
    (* Assemble the reduced model. *)
    let reduced = Model.create ~name:(Model.name model ^ "-presolved") () in
    let var_map = Array.make n (-1) in
    let fixed_value = Array.make n 0.0 in
    let vars_fixed = ref 0 in
    for v = 0 to n - 1 do
      if is_fixed w v then begin
        fixed_value.(v) <- w.lb.(v);
        incr vars_fixed
      end
      else begin
        let hv = Model.var_of_id model v in
        let nv =
          Model.add_var reduced ~lb:w.lb.(v) ~ub:w.ub.(v)
            ~kind:(Model.var_kind model hv) (Model.var_name model hv)
        in
        var_map.(v) <- (nv :> int)
      end
    done;
    let rename e =
      List.fold_left
        (fun acc (v, c) ->
          assert (var_map.(v) >= 0);
          Expr.add_term acc var_map.(v) c)
        (Expr.const (Expr.constant e))
        (Expr.terms e)
    in
    let rows_kept = ref 0 in
    List.iter
      (fun (r : Model.row) ->
        incr rows_kept;
        Model.add_range reduced ~name:r.Model.row_name
          ~lo:(Float.min r.Model.lo r.Model.hi)
          ~hi:r.Model.hi (rename r.Model.expr))
      !pending;
    let sense, obj = Model.objective model in
    Model.set_objective reduced sense (rename (substitute w obj));
    Reduced
      {
        reduced;
        var_map;
        fixed_value;
        rows_kept = !rows_kept;
        rows_dropped = w.dropped;
        vars_fixed = !vars_fixed;
      }
  with Proved_infeasible -> Infeasible

let restore p x_reduced =
  if Array.length x_reduced <> Model.num_vars p.reduced then
    invalid_arg "Presolve.restore: arity";
  Array.init (Array.length p.var_map) (fun v ->
      if p.var_map.(v) >= 0 then x_reduced.(p.var_map.(v))
      else p.fixed_value.(v))
