module Imap = Map.Make (Int)

type t = { terms : float Imap.t; const : float }

let zero = { terms = Imap.empty; const = 0.0 }
let const c = { terms = Imap.empty; const = c }

let clean terms = Imap.filter (fun _ c -> not (Lina.Tol.is_zero c)) terms

let var ?(coeff = 1.0) v =
  if v < 0 then invalid_arg "Expr.var: negative id";
  { terms = clean (Imap.singleton v coeff); const = 0.0 }

let add_term e v c =
  if v < 0 then invalid_arg "Expr.add_term: negative id";
  let merged =
    Imap.update v
      (function None -> Some c | Some c0 -> Some (c0 +. c))
      e.terms
  in
  { e with terms = clean merged }

let add_const e c = { e with const = e.const +. c }

let of_terms ?(const = 0.0) pairs =
  List.fold_left (fun e (v, c) -> add_term e v c) { zero with const } pairs

let add a b =
  let terms =
    Imap.union (fun _ c1 c2 -> Some (c1 +. c2)) a.terms b.terms |> clean
  in
  { terms; const = a.const +. b.const }

let scale s e =
  if Lina.Tol.is_zero s then const 0.0
  else { terms = Imap.map (fun c -> s *. c) e.terms; const = s *. e.const }

let sub a b = add a (scale (-1.0) b)
let sum es = List.fold_left add zero es
let coeff e v = match Imap.find_opt v e.terms with Some c -> c | None -> 0.0
let constant e = e.const
let terms e = Imap.bindings e.terms
let num_terms e = Imap.cardinal e.terms

let eval e value_of =
  Imap.fold (fun v c acc -> acc +. (c *. value_of v)) e.terms e.const

let map_vars f e = of_terms ~const:e.const (List.map (fun (v, c) -> (f v, c)) (terms e))

let pp ?(name = fun v -> Printf.sprintf "x%d" v) () ppf e =
  let pp_term first ppf (v, c) =
    if c >= 0.0 && not first then Format.fprintf ppf " + %g %s" c (name v)
    else if c >= 0.0 then Format.fprintf ppf "%g %s" c (name v)
    else Format.fprintf ppf " - %g %s" (Float.abs c) (name v)
  in
  let rec go first ppf = function
    | [] -> ()
    | t :: rest ->
      pp_term first ppf t;
      go false ppf rest
  in
  go true ppf (terms e);
  if not (Lina.Tol.is_zero e.const) || Imap.is_empty e.terms then
    if e.const >= 0.0 && not (Imap.is_empty e.terms) then
      Format.fprintf ppf " + %g" e.const
    else Format.fprintf ppf "%g" e.const
