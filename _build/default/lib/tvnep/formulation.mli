(** Shared machinery of the three continuous-time MIP formulations.

    All models agree on the embedding layer (one {!Embedding.t} per
    request), the temporal variables ([t_e] per event, [t⁺]/[t⁻] per
    request) and the event-mapping variables χ⁺/χ⁻; they differ in the
    number of events and in how state allocations are represented.  The
    handle type {!t} is what the objective layer and the solution
    extractor consume, uniformly for every model. *)

type t = {
  model : Lp.Model.t;
  inst : Instance.t;
  n_events : int;
  n_states : int;  (** states sit between consecutive events *)
  embeddings : Embedding.t array;
  t_start : Lp.Model.var array;  (** t⁺ per request *)
  t_end : Lp.Model.var array;    (** t⁻ per request *)
  t_event : Lp.Model.var array;  (** one time value per event *)
  chi_start : (int * Lp.Model.var) array array;
      (** per request: (event index, χ⁺ variable), restricted to the
          allowed event range *)
  chi_end : (int * Lp.Model.var) array array;
  state_node_load : Lp.Expr.t array array;
      (** [state][substrate node] — total allocation expression, used by
          the capacity rows and by the load-balancing objective *)
  state_link_load : Lp.Expr.t array array;
  lift : Solution.t -> float array;
      (** Maps a feasible TVNEP solution to a full assignment of this
          model's variables (event permutation, event times, auxiliary
          allocation variables, …).  Used to seed branch-and-bound with
          the greedy's solution; the MIP layer re-verifies feasibility, so
          an imperfect lift is dropped, never trusted. *)
}

val add_embeddings :
  Lp.Model.t -> Instance.t -> relax_integrality:bool -> Embedding.t array

val add_temporal_vars :
  Lp.Model.t ->
  Instance.t ->
  n_events:int ->
  Lp.Model.var array * Lp.Model.var array * Lp.Model.var array
(** [(t_event, t_start, t_end)] with window-derived bounds
    ([t⁺ ∈ [t^s, t^e - d]], [t⁻ ∈ [t^s + d, t^e]]), event-time
    monotonicity (Constraint (13)) and the duration equalities (18). *)

val add_chi :
  Lp.Model.t ->
  Instance.t ->
  prefix:string ->
  ranges:(int * int) array ->
  relax_integrality:bool ->
  (int * Lp.Model.var) array array
(** One binary per request per allowed event index, with the
    exactly-one-event row (Constraints (10)/(11), which subsume cut (19)
    when the ranges come from {!Depgraph.csigma_event_ranges}). *)

val link_time_exact :
  Lp.Model.t ->
  horizon:float ->
  t_event:Lp.Model.var array ->
  t_var:Lp.Model.var ->
  chi:(int * Lp.Model.var) array ->
  unit
(** Big-M link "the time variable equals the time of its event"
    (Constraints (14)/(15)); used for all starts and for Σ/Δ ends. *)

val link_time_interval :
  Lp.Model.t ->
  horizon:float ->
  t_event:Lp.Model.var array ->
  t_var:Lp.Model.var ->
  chi:(int * Lp.Model.var) array ->
  unit
(** cΣ end semantics (Constraints (16)/(17)): mapping an end onto event
    [e_i] confines it to [[t_{e_{i-1}}, t_{e_i}]]. *)

val activity_expr :
  chi_start:(int * Lp.Model.var) array ->
  chi_end:(int * Lp.Model.var) array ->
  state:int ->
  Lp.Expr.t
(** The Σ(R, e_i) macro (Table VIII, corrected form): 1 exactly on states
    where the request is active. *)

val add_two_k_event_skeleton :
  Lp.Model.t ->
  Instance.t ->
  relax_integrality:bool ->
  int
  * (int * Lp.Model.var) array array
  * (int * Lp.Model.var) array array
  * Lp.Model.var array
  * Lp.Model.var array
  * Lp.Model.var array
(** The event structure shared by the Σ- and Δ-Models: [2·|R|] events, one
    request endpoint bijectively per event, starts {e and} ends tied
    exactly to their event's time.  Returns
    [(n_events, chi_start, chi_end, t_event, t_start, t_end)]. *)

val add_pairwise_cuts : Lp.Model.t -> Instance.t -> t -> unit
(** Posts Constraint (20) from {!Depgraph.pairwise_cuts} onto the χ
    variables of the handle (skipping vacuous index combinations). *)

val extract_solution : t -> objective:float -> (int -> float) -> Solution.t
(** Reads a MIP valuation into a {!Solution.t}: embeddings via
    {!Embedding.extract}, schedules from the t⁺/t⁻ variables. *)

(** {2 Lifting helpers} — shared by the per-model [lift] closures. *)

val alloc_values :
  Instance.t -> req:int -> Solution.assignment -> float array * float array
(** Concrete (node, link) allocation vectors of one assignment: what the
    alloc macros of Table V evaluate to on a fixed solution. *)

val set_expr_var : float array -> Lp.Expr.t -> float -> unit
(** Writes [value] into the variable underlying a single-variable
    expression; silently ignores constants and compound expressions. *)

val lift_embedding :
  Instance.t -> req:int -> Embedding.t -> Solution.assignment -> float array -> unit
(** Fills [x_R], [x_V] (when mappings are free) and [x_E] for one
    request. *)

val lift_times :
  t -> Solution.t -> float array -> unit
(** Fills the per-request [t⁺]/[t⁻] variables from the solution times. *)

val set_chi : (int * Lp.Model.var) array -> int -> float array -> bool
(** Sets the χ variable of the given event index to 1 (others stay 0);
    [false] when the index lies outside the variable's allowed range. *)

val endpoint_order :
  Solution.t -> n_events:int -> int array * int array * float array
(** Σ/Δ lifting: the bijective endpoint→event assignment
    [(start_pos, end_pos, event_times)], sorted by scheduled time with
    ends preceding equal-time starts. *)
