type params = {
  grid_rows : int;
  grid_cols : int;
  node_capacity : float;
  link_capacity : float;
  star_leaves : int;
  demand_lo : float;
  demand_hi : float;
  num_requests : int;
  arrival_rate : float;
  weibull_shape : float;
  weibull_scale : float;
  min_duration : float;
  flexibility : float;
}

let paper =
  {
    grid_rows = 4;
    grid_cols = 5;
    node_capacity = 3.5;
    link_capacity = 5.0;
    star_leaves = 4;
    demand_lo = 1.0;
    demand_hi = 2.0;
    num_requests = 20;
    arrival_rate = 1.0;
    weibull_shape = 2.0;
    weibull_scale = 4.0;
    min_duration = 0.25;
    flexibility = 0.0;
  }

(* Sized for the from-scratch MIP stack: same contention structure, fewer
   requests and a smaller grid. *)
let scaled =
  { paper with grid_rows = 3; grid_cols = 3; star_leaves = 2; num_requests = 5 }

let generate rng p =
  if p.num_requests <= 0 then invalid_arg "Scenario.generate: no requests";
  let grid = Graphs.Generators.grid ~rows:p.grid_rows ~cols:p.grid_cols in
  let substrate =
    Substrate.uniform grid ~node_cap:p.node_capacity ~link_cap:p.link_capacity
  in
  let arrivals =
    Workload.Distributions.poisson_arrivals rng ~rate:p.arrival_rate
      ~count:p.num_requests
  in
  let n_sub = Substrate.num_nodes substrate in
  let requests_and_maps =
    List.mapi
      (fun i arrival ->
        let orientation =
          if Workload.Rng.bool rng then Graphs.Generators.To_center
          else Graphs.Generators.From_center
        in
        let graph = Graphs.Generators.star ~leaves:p.star_leaves ~orientation in
        let node_demand =
          Array.init (Graphs.Digraph.num_nodes graph) (fun _ ->
              Workload.Distributions.uniform rng ~lo:p.demand_lo
                ~hi:p.demand_hi)
        in
        let link_demand =
          Array.init (Graphs.Digraph.num_edges graph) (fun _ ->
              Workload.Distributions.uniform rng ~lo:p.demand_lo
                ~hi:p.demand_hi)
        in
        let duration =
          Float.max p.min_duration
            (Workload.Distributions.weibull rng ~shape:p.weibull_shape
               ~scale:p.weibull_scale)
        in
        let request =
          Request.make
            ~name:(Printf.sprintf "R%d" i)
            ~graph ~node_demand ~link_demand ~duration ~start_min:arrival
            ~end_max:(arrival +. duration +. p.flexibility)
        in
        let mapping =
          Array.init (Graphs.Digraph.num_nodes graph) (fun _ ->
              Workload.Rng.int rng n_sub)
        in
        (request, mapping))
      arrivals
  in
  let requests = Array.of_list (List.map fst requests_and_maps) in
  let node_mappings = Array.of_list (List.map snd requests_and_maps) in
  let horizon =
    Array.fold_left
      (fun acc r -> Float.max acc r.Request.end_max)
      1.0 requests
  in
  Instance.make ~node_mappings ~substrate ~requests ~horizon ()

let sweep ~seed p ~flexibilities =
  List.map
    (fun flex ->
      (* Fresh generator per flexibility: identical arrivals, durations,
         demands and mappings — only the windows widen. *)
      let rng = Workload.Rng.create seed in
      generate rng { p with flexibility = flex })
    flexibilities
