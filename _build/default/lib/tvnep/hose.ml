let switch_node = 0

let virtual_cluster ~name ~vms ~vm_demand ~bandwidth ~duration ~start_min
    ~end_max =
  if vms <= 0 then invalid_arg "Hose.virtual_cluster: vms must be positive";
  if vm_demand < 0.0 || bandwidth < 0.0 then
    invalid_arg "Hose.virtual_cluster: negative demand";
  let graph = Graphs.Digraph.create (vms + 1) in
  let link_demand = ref [] in
  for vm = 1 to vms do
    ignore (Graphs.Digraph.add_edge graph ~src:vm ~dst:switch_node);
    link_demand := bandwidth :: !link_demand;
    ignore (Graphs.Digraph.add_edge graph ~src:switch_node ~dst:vm);
    link_demand := bandwidth :: !link_demand
  done;
  let node_demand =
    Array.init (vms + 1) (fun v -> if v = switch_node then 0.0 else vm_demand)
  in
  Request.make ~name ~graph ~node_demand
    ~link_demand:(Array.of_list (List.rev !link_demand))
    ~duration ~start_min ~end_max

let is_virtual_cluster (r : Request.t) =
  let g = r.Request.graph in
  let n = Graphs.Digraph.num_nodes g in
  n >= 2
  && r.Request.node_demand.(switch_node) = 0.0
  && List.for_all
       (fun (e : Graphs.Digraph.edge) ->
         e.src = switch_node || e.dst = switch_node)
       (Graphs.Digraph.edges g)
  && List.for_all
       (fun vm ->
         Graphs.Digraph.has_edge g ~src:vm ~dst:switch_node
         && Graphs.Digraph.has_edge g ~src:switch_node ~dst:vm)
       (List.init (n - 1) (fun i -> i + 1))
