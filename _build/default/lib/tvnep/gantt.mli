(** ASCII Gantt charts of TVNEP schedules.

    Renders one row per request over a character grid spanning [0, T]:
    [#] marks execution, [.] marks the unused remainder of the temporal
    window (the flexibility the provider did not need), and rejected
    requests show only their window.  Used by the CLI and handy when
    eyeballing solver output in tests. *)

val render : ?width:int -> Instance.t -> Solution.t -> string
(** [width] is the number of time columns (default 60).
    @raise Invalid_argument when the solution arity does not match. *)

val print : ?width:int -> Instance.t -> Solution.t -> unit
