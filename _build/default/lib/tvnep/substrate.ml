type t = {
  graph : Graphs.Digraph.t;
  node_cap : float array;
  link_cap : float array;
}

let make graph ~node_cap ~link_cap =
  if Array.length node_cap <> Graphs.Digraph.num_nodes graph then
    invalid_arg "Substrate.make: node capacity arity";
  if Array.length link_cap <> Graphs.Digraph.num_edges graph then
    invalid_arg "Substrate.make: link capacity arity";
  Array.iter
    (fun c -> if c < 0.0 then invalid_arg "Substrate.make: negative capacity")
    node_cap;
  Array.iter
    (fun c -> if c < 0.0 then invalid_arg "Substrate.make: negative capacity")
    link_cap;
  { graph; node_cap = Array.copy node_cap; link_cap = Array.copy link_cap }

let uniform graph ~node_cap ~link_cap =
  make graph
    ~node_cap:(Array.make (Graphs.Digraph.num_nodes graph) node_cap)
    ~link_cap:(Array.make (Graphs.Digraph.num_edges graph) link_cap)

let graph s = s.graph
let num_nodes s = Graphs.Digraph.num_nodes s.graph
let num_links s = Graphs.Digraph.num_edges s.graph

let node_cap s v =
  if v < 0 || v >= num_nodes s then invalid_arg "Substrate.node_cap";
  s.node_cap.(v)

let link_cap s e =
  if e < 0 || e >= num_links s then invalid_arg "Substrate.link_cap";
  s.link_cap.(e)

let total_node_capacity s = Array.fold_left ( +. ) 0.0 s.node_cap

let pp ppf s =
  Format.fprintf ppf "substrate: %d nodes (cap %a), %d links" (num_nodes s)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       (fun ppf c -> Format.fprintf ppf "%g" c))
    (Array.to_list s.node_cap) (num_links s)
