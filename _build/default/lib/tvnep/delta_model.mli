(** The Δ-Model (Section III-B): state {e changes} only.

    One real variable Δ_e(r) per event and resource, forced by big-M
    selection constraints (3)–(6) to equal ±alloc of whichever request's
    start/end maps onto the event; capacities are checked on cumulative
    sums.  Few variables, but — as the paper demonstrates and our
    evaluation reproduces — a very weak LP relaxation: fractional event
    mappings can hide all allocations. *)

type options = { relax_integrality : bool }

val default_options : options

val build : ?options:options -> Instance.t -> Formulation.t
