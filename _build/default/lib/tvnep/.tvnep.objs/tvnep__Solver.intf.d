lib/tvnep/solver.mli: Formulation Instance Lp Mip Objective Solution
