lib/tvnep/sigma_model.mli: Formulation Instance
