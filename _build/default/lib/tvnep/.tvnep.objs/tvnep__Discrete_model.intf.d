lib/tvnep/discrete_model.mli: Embedding Instance Lp Mip Solver
