lib/tvnep/depgraph.mli: Graphs Instance
