lib/tvnep/embedding.mli: Instance Lp Solution
