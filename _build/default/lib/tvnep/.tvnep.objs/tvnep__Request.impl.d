lib/tvnep/request.ml: Array Format Graphs List Printf
