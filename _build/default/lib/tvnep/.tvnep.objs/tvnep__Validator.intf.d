lib/tvnep/validator.mli: Instance Solution
