lib/tvnep/hose.ml: Array Graphs List Request
