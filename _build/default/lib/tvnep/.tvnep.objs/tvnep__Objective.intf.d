lib/tvnep/objective.mli: Formulation Lp
