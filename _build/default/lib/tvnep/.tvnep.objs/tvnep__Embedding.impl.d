lib/tvnep/embedding.ml: Array Graphs Instance List Lp Printf Request Solution Substrate
