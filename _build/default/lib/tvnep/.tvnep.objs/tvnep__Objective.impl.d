lib/tvnep/objective.ml: Array Embedding Float Formulation Instance List Lp Printf Request Substrate
