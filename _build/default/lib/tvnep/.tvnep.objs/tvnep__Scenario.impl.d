lib/tvnep/scenario.ml: Array Float Graphs Instance List Printf Request Substrate Workload
