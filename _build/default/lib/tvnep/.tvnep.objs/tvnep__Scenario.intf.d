lib/tvnep/scenario.mli: Instance Workload
