lib/tvnep/solver.ml: Array Csigma_model Delta_model Formulation Greedy Instance Lp Mip Objective Sigma_model Solution
