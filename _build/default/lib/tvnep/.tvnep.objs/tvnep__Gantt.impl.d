lib/tvnep/gantt.ml: Array Buffer Bytes Float Instance Printf Request Solution String
