lib/tvnep/request.mli: Format Graphs
