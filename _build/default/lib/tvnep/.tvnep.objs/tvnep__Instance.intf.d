lib/tvnep/instance.mli: Format Request Substrate
