lib/tvnep/discrete_model.ml: Array Embedding Float Formulation Instance List Lp Mip Printf Request Solution Solver Substrate
