lib/tvnep/csigma_model.mli: Formulation Instance
