lib/tvnep/greedy.ml: Array Float Graphs Hashtbl Instance List Lp Printf Request Solution Substrate Unix
