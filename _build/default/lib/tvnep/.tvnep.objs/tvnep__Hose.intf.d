lib/tvnep/hose.mli: Request
