lib/tvnep/instance_io.mli: Instance
