lib/tvnep/depgraph.ml: Array Float Graphs Instance List Request
