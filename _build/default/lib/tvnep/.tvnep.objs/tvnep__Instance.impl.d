lib/tvnep/instance.ml: Array Float Format Option Printf Request Substrate
