lib/tvnep/formulation.mli: Embedding Instance Lp Solution
