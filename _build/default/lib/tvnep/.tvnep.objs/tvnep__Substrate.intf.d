lib/tvnep/substrate.mli: Format Graphs
