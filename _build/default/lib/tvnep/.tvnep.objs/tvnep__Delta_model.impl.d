lib/tvnep/delta_model.ml: Array Embedding Formulation Instance List Lp Printf Solution Substrate
