lib/tvnep/csigma_model.ml: Array Depgraph Embedding Float Formulation Instance List Lp Printf Request Solution Substrate
