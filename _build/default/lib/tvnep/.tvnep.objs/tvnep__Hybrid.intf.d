lib/tvnep/hybrid.mli: Greedy Instance Mip Solution Solver
