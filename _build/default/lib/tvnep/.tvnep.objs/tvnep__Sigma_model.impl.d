lib/tvnep/sigma_model.ml: Array Embedding Formulation Instance List Lp Printf Request Solution Substrate
