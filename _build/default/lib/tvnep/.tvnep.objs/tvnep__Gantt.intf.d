lib/tvnep/gantt.mli: Instance Solution
