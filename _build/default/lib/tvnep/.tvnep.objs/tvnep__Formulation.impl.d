lib/tvnep/formulation.ml: Array Depgraph Embedding Float Instance List Lp Printf Request Solution Substrate
