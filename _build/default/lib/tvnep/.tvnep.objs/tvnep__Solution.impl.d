lib/tvnep/solution.ml: Array Format Instance List Request Substrate
