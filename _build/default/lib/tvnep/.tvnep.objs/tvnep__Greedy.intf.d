lib/tvnep/greedy.mli: Instance Lp Solution
