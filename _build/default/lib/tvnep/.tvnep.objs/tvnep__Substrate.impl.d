lib/tvnep/substrate.ml: Array Format Graphs
