lib/tvnep/instance_io.ml: Array Buffer Fun Graphs Instance List Option Printf Request String Substrate
