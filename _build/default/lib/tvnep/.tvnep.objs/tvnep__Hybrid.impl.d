lib/tvnep/hybrid.ml: Array Float Greedy Instance List Mip Option Request Solution Solver Unix
