lib/tvnep/validator.ml: Array Float Graphs Instance List Printf Request Solution String Substrate
