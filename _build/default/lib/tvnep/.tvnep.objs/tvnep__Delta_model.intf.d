lib/tvnep/delta_model.mli: Formulation Instance
