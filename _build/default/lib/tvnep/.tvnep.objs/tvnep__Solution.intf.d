lib/tvnep/solution.mli: Format Instance Request
