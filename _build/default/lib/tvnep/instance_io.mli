(** Plain-text instance files.

    A simple line-oriented format so instances can be stored, shared and
    fed to the [tvnep_solve] CLI.  Grammar (one directive per line, [#]
    comments and blank lines ignored):

    {v
    tvnep 1
    horizon 24.0
    substrate-nodes 9
    node-cap 0 3.5            # node id, capacity
    link 0 1 5.0              # src dst capacity (directed, ids in order)
    request R0 duration 2.5 window 1.0 8.0
      vnode 0 1.5 host 4      # virtual node id, demand [, fixed host]
      vlink 1 0 1.2           # src dst demand
    end
    v}

    Either every virtual node carries a [host] or none does (fixed node
    mappings are all-or-nothing per instance, as in {!Instance.t}). *)

exception Parse_error of int * string
(** Line number and message. *)

val to_string : Instance.t -> string

val of_string : string -> Instance.t
(** @raise Parse_error on malformed input. *)

val save : string -> Instance.t -> unit
(** [save path inst].  @raise Sys_error on I/O failure. *)

val load : string -> Instance.t
(** @raise Parse_error / [Sys_error]. *)
