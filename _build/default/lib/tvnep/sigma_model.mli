(** The Σ-Model (Section III-C): explicit state representation over
    [2·|R|] event points; both starts and ends map bijectively onto events
    (one endpoint per event).  Stronger relaxation than the Δ-Model but
    without the cΣ compactification/symmetry reductions — the middle
    contender of the paper's comparison. *)

type options = { relax_integrality : bool }

val default_options : options

val build : ?options:options -> Instance.t -> Formulation.t
