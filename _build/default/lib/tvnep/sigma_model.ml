type options = { relax_integrality : bool }

let default_options = { relax_integrality = false }

let build ?(options = default_options) inst =
  let k = Instance.num_requests inst in
  if k = 0 then invalid_arg "Sigma_model.build: no requests";
  let sub = inst.Instance.substrate in
  let n_nodes = Substrate.num_nodes sub and n_links = Substrate.num_links sub in
  let model = Lp.Model.create ~name:"sigma" () in
  let embeddings =
    Formulation.add_embeddings model inst
      ~relax_integrality:options.relax_integrality
  in
  let n_events, chi_start, chi_end, t_event, t_start, t_end =
    Formulation.add_two_k_event_skeleton model inst
      ~relax_integrality:options.relax_integrality
  in
  let n_states = n_events - 1 in
  let state_node_load = Array.make_matrix n_states n_nodes Lp.Expr.zero in
  let state_link_load = Array.make_matrix n_states n_links Lp.Expr.zero in
  let a_records = ref [] in
  for req = 0 to k - 1 do
    let emb = embeddings.(req) in
    let rname = (Instance.request inst req).Request.name in
    for i = 0 to n_states - 1 do
      let sigma =
        Formulation.activity_expr ~chi_start:chi_start.(req)
          ~chi_end:chi_end.(req) ~state:i
      in
      let add_alloc_var cap alloc tag =
        let a =
          Lp.Model.add_var model ~lb:0.0 ~ub:cap
            (Printf.sprintf "a_%s_s%d_%s" rname i tag)
        in
        Lp.Model.add_ge model
          (Lp.Expr.sub
             (Lp.Expr.var (a :> int))
             (Lp.Expr.sub alloc
                (Lp.Expr.scale cap (Lp.Expr.sub (Lp.Expr.const 1.0) sigma))))
          0.0;
        a
      in
      for s = 0 to n_nodes - 1 do
        if Lp.Expr.num_terms emb.Embedding.node_alloc.(s) > 0 then begin
          let a =
            add_alloc_var (Substrate.node_cap sub s)
              emb.Embedding.node_alloc.(s)
              (Printf.sprintf "n%d" s)
          in
          a_records := (req, i, `Node s, a) :: !a_records;
          state_node_load.(i).(s) <-
            Lp.Expr.add state_node_load.(i).(s) (Lp.Expr.var (a :> int))
        end
      done;
      for l = 0 to n_links - 1 do
        if Lp.Expr.num_terms emb.Embedding.link_alloc.(l) > 0 then begin
          let a =
            add_alloc_var (Substrate.link_cap sub l)
              emb.Embedding.link_alloc.(l)
              (Printf.sprintf "l%d" l)
          in
          a_records := (req, i, `Link l, a) :: !a_records;
          state_link_load.(i).(l) <-
            Lp.Expr.add state_link_load.(i).(l) (Lp.Expr.var (a :> int))
        end
      done
    done
  done;
  for i = 0 to n_states - 1 do
    for s = 0 to n_nodes - 1 do
      if Lp.Expr.num_terms state_node_load.(i).(s) > 0 then
        Lp.Model.add_le model
          ~name:(Printf.sprintf "cap_s%d_n%d" i s)
          state_node_load.(i).(s) (Substrate.node_cap sub s)
    done;
    for l = 0 to n_links - 1 do
      if Lp.Expr.num_terms state_link_load.(i).(l) > 0 then
        Lp.Model.add_le model
          ~name:(Printf.sprintf "cap_s%d_l%d" i l)
          state_link_load.(i).(l) (Substrate.link_cap sub l)
    done
  done;
  let lift (sol : Solution.t) =
    let arr = Array.make (Lp.Model.num_vars model) 0.0 in
    Array.iteri
      (fun req emb ->
        Formulation.lift_embedding inst ~req emb
          sol.Solution.assignments.(req) arr)
      embeddings;
    Array.iteri
      (fun req (a : Solution.assignment) ->
        arr.((t_start.(req) :> int)) <- a.Solution.t_start;
        arr.((t_end.(req) :> int)) <- a.Solution.t_end)
      sol.Solution.assignments;
    let start_pos, end_pos, ev_time =
      Formulation.endpoint_order sol ~n_events
    in
    Array.iteri (fun i (v : Lp.Model.var) -> arr.((v :> int)) <- ev_time.(i)) t_event;
    for req = 0 to k - 1 do
      ignore (Formulation.set_chi chi_start.(req) start_pos.(req) arr);
      ignore (Formulation.set_chi chi_end.(req) end_pos.(req) arr)
    done;
    List.iter
      (fun (req, state, res, (a : Lp.Model.var)) ->
        if start_pos.(req) <= state && end_pos.(req) > state then begin
          let node_alloc, link_alloc =
            Formulation.alloc_values inst ~req sol.Solution.assignments.(req)
          in
          arr.((a :> int)) <-
            (match res with
            | `Node s -> node_alloc.(s)
            | `Link l -> link_alloc.(l))
        end)
      !a_records;
    arr
  in
  {
    Formulation.model;
    inst;
    n_events;
    n_states;
    embeddings;
    t_start;
    t_end;
    t_event;
    chi_start;
    chi_end;
    state_node_load;
    state_link_load;
    lift;
  }
