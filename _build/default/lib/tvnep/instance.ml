type t = {
  substrate : Substrate.t;
  requests : Request.t array;
  horizon : float;
  node_mappings : int array array option;
}

let validate_mappings substrate requests mappings =
  if Array.length mappings <> Array.length requests then
    invalid_arg "Instance.make: one node mapping per request required";
  Array.iteri
    (fun r map ->
      let req = requests.(r) in
      if Array.length map <> Request.num_vnodes req then
        invalid_arg
          (Printf.sprintf "Instance.make: mapping arity for request %s"
             req.Request.name);
      Array.iter
        (fun s ->
          if s < 0 || s >= Substrate.num_nodes substrate then
            invalid_arg "Instance.make: mapped substrate node out of range")
        map)
    mappings

let make ?node_mappings ~substrate ~requests ~horizon () =
  if horizon <= 0.0 then invalid_arg "Instance.make: non-positive horizon";
  Array.iter
    (fun r ->
      if r.Request.end_max > horizon +. 1e-9 then
        invalid_arg
          (Printf.sprintf "Instance.make: request %s exceeds horizon"
             r.Request.name))
    requests;
  (match node_mappings with
  | Some m -> validate_mappings substrate requests m
  | None -> ());
  {
    substrate;
    requests = Array.copy requests;
    horizon;
    node_mappings = Option.map (Array.map Array.copy) node_mappings;
  }

let num_requests t = Array.length t.requests

let request t r =
  if r < 0 || r >= num_requests t then invalid_arg "Instance.request";
  t.requests.(r)

let node_mapping t r =
  if r < 0 || r >= num_requests t then invalid_arg "Instance.node_mapping";
  Option.map (fun m -> Array.copy m.(r)) t.node_mappings

let has_fixed_mappings t = t.node_mappings <> None

let total_virtual_links t =
  Array.fold_left (fun acc r -> acc + Request.num_vlinks r) 0 t.requests

let with_flexibility t flex =
  let requests = Array.map (fun r -> Request.with_flexibility r flex) t.requests in
  let horizon =
    Array.fold_left
      (fun acc r -> Float.max acc r.Request.end_max)
      t.horizon requests
  in
  make ?node_mappings:t.node_mappings ~substrate:t.substrate ~requests ~horizon
    ()

let with_requests t requests ?node_mappings () =
  make ?node_mappings ~substrate:t.substrate ~requests ~horizon:t.horizon ()

let pp ppf t =
  Format.fprintf ppf "@[<v>instance: T=%g, %a@,%a@]" t.horizon Substrate.pp
    t.substrate
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Request.pp)
    (Array.to_list t.requests)
