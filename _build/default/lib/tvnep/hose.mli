(** Hose-model virtual clusters (the Oktopus abstraction ⟨N, B⟩).

    The paper notes its algorithms "are rather general and support all
    these models" — per-pair graph topologies (SecondNet) {e and}
    per-VM hose guarantees (Oktopus).  A virtual cluster of [N] VMs with
    per-VM bandwidth [B] is represented as a star whose center is the
    virtual switch: a node with zero compute demand, connected to every VM
    by one directed link of demand [B] in each direction.  The resulting
    {!Request.t} flows through every formulation, the greedy and the
    validator unchanged. *)

val virtual_cluster :
  name:string ->
  vms:int ->
  vm_demand:float ->
  bandwidth:float ->
  duration:float ->
  start_min:float ->
  end_max:float ->
  Request.t
(** Node 0 is the virtual switch (zero demand); nodes 1..N are the VMs.
    @raise Invalid_argument for [vms <= 0], negative demands, or an
    invalid temporal triple (see {!Request.make}). *)

val switch_node : int
(** Index of the virtual switch within a cluster request (always 0). *)

val is_virtual_cluster : Request.t -> bool
(** Structural check: a star on node 0 with antiparallel links and zero
    demand at the center. *)
