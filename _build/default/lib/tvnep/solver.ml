type model_kind = Delta | Sigma | Csigma

let model_kind_to_string = function
  | Delta -> "delta"
  | Sigma -> "sigma"
  | Csigma -> "csigma"

type options = {
  kind : model_kind;
  objective : Objective.t;
  use_cuts : bool;
  pairwise_cuts : bool;
  seed_with_greedy : bool;
  mip : Mip.Branch_bound.params;
}

let default_options =
  {
    kind = Csigma;
    objective = Objective.Access_control;
    use_cuts = true;
    pairwise_cuts = true;
    seed_with_greedy = false;
    mip = Mip.Branch_bound.default_params;
  }

type outcome = {
  status : Mip.Branch_bound.status;
  solution : Solution.t option;
  objective : float option;
  bound : float;
  gap : float;
  runtime : float;
  nodes : int;
  lp_iterations : int;
  model_vars : int;
  model_rows : int;
}

let build inst options =
  let fm =
    match options.kind with
    | Delta -> Delta_model.build inst
    | Sigma -> Sigma_model.build inst
    | Csigma ->
      Csigma_model.build
        ~options:
          {
            Csigma_model.use_cuts = options.use_cuts;
            pairwise_cuts = options.pairwise_cuts;
            relax_integrality = false;
          }
        inst
  in
  let extras = Objective.apply fm options.objective in
  (fm, extras)

let solve inst options =
  let fm, _extras = build inst options in
  let model = fm.Formulation.model in
  (* Optional greedy seeding (the combination the paper's conclusion
     proposes): lift the heuristic solution into this model's variables as
     the initial incumbent.  Only meaningful under access control; the MIP
     layer re-verifies the point before trusting it. *)
  let initial =
    if
      options.seed_with_greedy
      && options.objective = Objective.Access_control
      && Instance.has_fixed_mappings inst
    then begin
      let greedy_sol, _ = Greedy.solve inst in
      Some (fm.Formulation.lift greedy_sol)
    end
    else None
  in
  let result = Mip.Branch_bound.solve ~params:options.mip ?initial model in
  let solution =
    match result.Mip.Branch_bound.incumbent with
    | None -> None
    | Some x ->
      let value_of id = x.(id) in
      let objective =
        match result.Mip.Branch_bound.objective with
        | Some o -> o
        | None -> nan
      in
      Some (Formulation.extract_solution fm ~objective value_of)
  in
  {
    status = result.Mip.Branch_bound.status;
    solution;
    objective = result.Mip.Branch_bound.objective;
    bound = result.Mip.Branch_bound.best_bound;
    gap = result.Mip.Branch_bound.gap;
    runtime = result.Mip.Branch_bound.solve_time;
    nodes = result.Mip.Branch_bound.nodes;
    lp_iterations = result.Mip.Branch_bound.lp_iterations;
    model_vars = Lp.Model.num_vars model;
    model_rows = Lp.Model.num_constrs model;
  }

let solve_lp_relaxation inst options =
  let fm, _ = build inst options in
  Lp.Simplex.solve_model fm.Formulation.model
