type kind = Start | End

type vertex = { req : int; kind : kind }

let node_of_vertex v = (2 * v.req) + match v.kind with Start -> 0 | End -> 1

let vertex_of_node n =
  { req = n / 2; kind = (if n mod 2 = 0 then Start else End) }

let earliest inst v =
  let r = Instance.request inst v.req in
  match v.kind with
  | Start -> r.Request.start_min
  | End -> Request.earliest_end r

let latest inst v =
  let r = Instance.request inst v.req in
  match v.kind with
  | Start -> Request.latest_start r
  | End -> r.Request.end_max

let graph ?(self_edges = true) inst =
  let k = Instance.num_requests inst in
  let g = Graphs.Digraph.create (2 * k) in
  let vertices =
    List.concat_map
      (fun req -> [ { req; kind = Start }; { req; kind = End } ])
      (List.init k (fun i -> i))
  in
  List.iter
    (fun v ->
      List.iter
        (fun w ->
          if v <> w && latest inst v < earliest inst w then
            ignore
              (Graphs.Digraph.add_edge g ~src:(node_of_vertex v)
                 ~dst:(node_of_vertex w)))
        vertices)
    vertices;
  if self_edges then
    for req = 0 to k - 1 do
      let s = node_of_vertex { req; kind = Start }
      and e = node_of_vertex { req; kind = End } in
      if not (Graphs.Digraph.has_edge g ~src:s ~dst:e) then
        ignore (Graphs.Digraph.add_edge g ~src:s ~dst:e)
    done;
  g

type event_ranges = {
  start_lo : int array;
  start_hi : int array;
  end_lo : int array;
  end_hi : int array;
}

let trivial_ranges inst =
  let k = Instance.num_requests inst in
  {
    start_lo = Array.make k 0;
    start_hi = Array.make k (k - 1);
    end_lo = Array.make k 1;
    end_hi = Array.make k k;
  }

let is_start n = n mod 2 = 0

let csigma_event_ranges inst =
  let k = Instance.num_requests inst in
  let g = graph ~self_edges:true inst in
  let reach = Graphs.Paths.reachability g in
  (* Distinct start-ancestors / start-descendants of every vertex.  Each
     such start occupies its own event strictly before (resp. after) the
     vertex, because starts are bijective on events and dependency edges
     force strict time order (hence strict event order). *)
  let n = 2 * k in
  let anc_starts = Array.make n 0 and desc_starts = Array.make n 0 in
  for v = 0 to n - 1 do
    for u = 0 to n - 1 do
      if u <> v && is_start u then begin
        if reach.(u).(v) then anc_starts.(v) <- anc_starts.(v) + 1;
        if reach.(v).(u) then desc_starts.(v) <- desc_starts.(v) + 1
      end
    done
  done;
  let ranges = trivial_ranges inst in
  for req = 0 to k - 1 do
    let s = node_of_vertex { req; kind = Start }
    and e = node_of_vertex { req; kind = End } in
    ranges.start_lo.(req) <- max ranges.start_lo.(req) anc_starts.(s);
    ranges.start_hi.(req) <- min ranges.start_hi.(req) (k - 1 - desc_starts.(s));
    ranges.end_lo.(req) <- max ranges.end_lo.(req) anc_starts.(e);
    ranges.end_hi.(req) <- min ranges.end_hi.(req) (k - desc_starts.(e));
    assert (ranges.start_lo.(req) <= ranges.start_hi.(req));
    assert (ranges.end_lo.(req) <= ranges.end_hi.(req))
  done;
  ranges

type pairwise_cut = { before : vertex; after : vertex; min_gap : int }

let pairwise_cuts inst =
  let g = graph ~self_edges:true inst in
  let dist =
    Graphs.Paths.max_distances g ~weight:(fun (e : Graphs.Digraph.edge) ->
        if is_start e.src then 1.0 else 0.0)
  in
  let n = Graphs.Digraph.num_nodes g in
  let cuts = ref [] in
  for u = 0 to n - 1 do
    for w = 0 to n - 1 do
      if u <> w && dist.(u).(w) > 0.5 then
        cuts :=
          {
            before = vertex_of_node u;
            after = vertex_of_node w;
            min_gap = int_of_float (Float.round dist.(u).(w));
          }
          :: !cuts
    done
  done;
  List.rev !cuts
