exception Parse_error of int * string

let to_string inst =
  let buf = Buffer.create 4096 in
  let sub = inst.Instance.substrate in
  let sgraph = Substrate.graph sub in
  Buffer.add_string buf "tvnep 1\n";
  Buffer.add_string buf (Printf.sprintf "horizon %.17g\n" inst.Instance.horizon);
  Buffer.add_string buf
    (Printf.sprintf "substrate-nodes %d\n" (Substrate.num_nodes sub));
  for v = 0 to Substrate.num_nodes sub - 1 do
    Buffer.add_string buf
      (Printf.sprintf "node-cap %d %.17g\n" v (Substrate.node_cap sub v))
  done;
  List.iter
    (fun (e : Graphs.Digraph.edge) ->
      Buffer.add_string buf
        (Printf.sprintf "link %d %d %.17g\n" e.src e.dst
           (Substrate.link_cap sub e.id)))
    (Graphs.Digraph.edges sgraph);
  Array.iteri
    (fun req (r : Request.t) ->
      Buffer.add_string buf
        (Printf.sprintf "request %s duration %.17g window %.17g %.17g\n"
           r.Request.name r.Request.duration r.Request.start_min
           r.Request.end_max);
      let mapping = Instance.node_mapping inst req in
      for v = 0 to Request.num_vnodes r - 1 do
        match mapping with
        | Some hosts ->
          Buffer.add_string buf
            (Printf.sprintf "  vnode %d %.17g host %d\n" v
               r.Request.node_demand.(v) hosts.(v))
        | None ->
          Buffer.add_string buf
            (Printf.sprintf "  vnode %d %.17g\n" v r.Request.node_demand.(v))
      done;
      List.iter
        (fun (e : Graphs.Digraph.edge) ->
          Buffer.add_string buf
            (Printf.sprintf "  vlink %d %d %.17g\n" e.src e.dst
               r.Request.link_demand.(e.id)))
        (Graphs.Digraph.edges r.Request.graph);
      Buffer.add_string buf "end\n")
    inst.Instance.requests;
  Buffer.contents buf

(* --- parsing ----------------------------------------------------------- *)

type pending_request = {
  p_name : string;
  p_duration : float;
  p_start : float;
  p_end : float;
  mutable p_vnodes : (int * float * int option) list;  (* id, demand, host *)
  mutable p_vlinks : (int * int * float) list;
}

type parser_state = {
  mutable horizon : float option;
  mutable n_sub : int option;
  mutable node_caps : (int * float) list;
  mutable links : (int * int * float) list;
  mutable requests : pending_request list;  (* reversed *)
  mutable current : pending_request option;
  mutable version_seen : bool;
}

let fail line msg = raise (Parse_error (line, msg))

let float_of line s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail line (Printf.sprintf "expected a number, got %S" s)

let int_of line s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> fail line (Printf.sprintf "expected an integer, got %S" s)

let tokenize line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let parse_line st lineno raw =
  let line =
    match String.index_opt raw '#' with
    | Some i -> String.sub raw 0 i
    | None -> raw
  in
  match tokenize line with
  | [] -> ()
  | tokens ->
    (match (st.current, tokens) with
    | _, [ "tvnep"; v ] ->
      if v <> "1" then fail lineno ("unsupported version " ^ v);
      st.version_seen <- true
    | None, [ "horizon"; h ] -> st.horizon <- Some (float_of lineno h)
    | None, [ "substrate-nodes"; n ] -> st.n_sub <- Some (int_of lineno n)
    | None, [ "node-cap"; v; c ] ->
      st.node_caps <- (int_of lineno v, float_of lineno c) :: st.node_caps
    | None, [ "link"; a; b; c ] ->
      st.links <-
        (int_of lineno a, int_of lineno b, float_of lineno c) :: st.links
    | None, [ "request"; name; "duration"; d; "window"; s; e ] ->
      st.current <-
        Some
          {
            p_name = name;
            p_duration = float_of lineno d;
            p_start = float_of lineno s;
            p_end = float_of lineno e;
            p_vnodes = [];
            p_vlinks = [];
          }
    | Some req, [ "vnode"; v; d ] ->
      req.p_vnodes <- (int_of lineno v, float_of lineno d, None) :: req.p_vnodes
    | Some req, [ "vnode"; v; d; "host"; h ] ->
      req.p_vnodes <-
        (int_of lineno v, float_of lineno d, Some (int_of lineno h))
        :: req.p_vnodes
    | Some req, [ "vlink"; a; b; d ] ->
      req.p_vlinks <-
        (int_of lineno a, int_of lineno b, float_of lineno d) :: req.p_vlinks
    | Some req, [ "end" ] ->
      st.requests <- req :: st.requests;
      st.current <- None
    | None, tok :: _ -> fail lineno ("unexpected directive " ^ tok)
    | Some _, tok :: _ ->
      fail lineno ("unexpected directive inside request: " ^ tok)
    | (None | Some _), [] -> ())

let build_instance st =
  if not st.version_seen then fail 0 "missing 'tvnep 1' header";
  let horizon =
    match st.horizon with Some h -> h | None -> fail 0 "missing horizon"
  in
  let n_sub =
    match st.n_sub with Some n -> n | None -> fail 0 "missing substrate-nodes"
  in
  let sgraph = Graphs.Digraph.create n_sub in
  let links = List.rev st.links in
  let link_caps =
    List.map
      (fun (a, b, c) ->
        let id = Graphs.Digraph.add_edge sgraph ~src:a ~dst:b in
        (id, c))
      links
  in
  let node_cap = Array.make n_sub 0.0 in
  List.iter
    (fun (v, c) ->
      if v < 0 || v >= n_sub then fail 0 "node-cap id out of range";
      node_cap.(v) <- c)
    st.node_caps;
  let link_cap = Array.make (List.length link_caps) 0.0 in
  List.iter (fun (id, c) -> link_cap.(id) <- c) link_caps;
  let substrate = Substrate.make sgraph ~node_cap ~link_cap in
  let pending = List.rev st.requests in
  let build_request p =
    let vnodes = List.rev p.p_vnodes in
    let n = List.length vnodes in
    List.iteri
      (fun expect (id, _, _) ->
        if id <> expect then
          fail 0 (Printf.sprintf "request %s: vnode ids must be 0..%d in order"
                    p.p_name (n - 1)))
      vnodes;
    let graph = Graphs.Digraph.create n in
    let vlinks = List.rev p.p_vlinks in
    let link_demand =
      List.map
        (fun (a, b, d) ->
          let id = Graphs.Digraph.add_edge graph ~src:a ~dst:b in
          (id, d))
        vlinks
    in
    let node_demand = Array.of_list (List.map (fun (_, d, _) -> d) vnodes) in
    let ld = Array.make (List.length link_demand) 0.0 in
    List.iter (fun (id, d) -> ld.(id) <- d) link_demand;
    let request =
      Request.make ~name:p.p_name ~graph ~node_demand ~link_demand:ld
        ~duration:p.p_duration ~start_min:p.p_start ~end_max:p.p_end
    in
    let hosts = List.map (fun (_, _, h) -> h) vnodes in
    let mapping =
      if List.for_all Option.is_some hosts then
        Some (Array.of_list (List.map Option.get hosts))
      else if List.for_all Option.is_none hosts then None
      else fail 0 (Printf.sprintf "request %s: partial host mapping" p.p_name)
    in
    (request, mapping)
  in
  let built = List.map build_request pending in
  let requests = Array.of_list (List.map fst built) in
  let mappings = List.map snd built in
  let node_mappings =
    if List.for_all Option.is_some mappings then
      Some (Array.of_list (List.map Option.get mappings))
    else if List.for_all Option.is_none mappings then None
    else fail 0 "either all requests carry host mappings or none"
  in
  Instance.make ?node_mappings ~substrate ~requests ~horizon ()

let of_string text =
  let st =
    {
      horizon = None;
      n_sub = None;
      node_caps = [];
      links = [];
      requests = [];
      current = None;
      version_seen = false;
    }
  in
  List.iteri
    (fun i line -> parse_line st (i + 1) line)
    (String.split_on_char '\n' text);
  (match st.current with
  | Some r -> fail 0 (Printf.sprintf "request %s not terminated by 'end'" r.p_name)
  | None -> ());
  try build_instance st
  with Invalid_argument msg -> fail 0 msg

let save path inst =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string inst))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      of_string text)
