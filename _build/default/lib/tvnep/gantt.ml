let render ?(width = 60) inst (sol : Solution.t) =
  if Array.length sol.Solution.assignments <> Instance.num_requests inst then
    invalid_arg "Gantt.render: arity mismatch";
  if width < 2 then invalid_arg "Gantt.render: width too small";
  let horizon = inst.Instance.horizon in
  let col t =
    let c =
      int_of_float (Float.round (t /. horizon *. float_of_int (width - 1)))
    in
    max 0 (min (width - 1) c)
  in
  let buf = Buffer.create 1024 in
  let name_width =
    Array.fold_left
      (fun acc (r : Request.t) -> max acc (String.length r.Request.name))
      4 inst.Instance.requests
  in
  Buffer.add_string buf
    (Printf.sprintf "%*s  |%s|  t = 0 .. %g\n" name_width ""
       (String.make width '-') horizon);
  Array.iteri
    (fun i (a : Solution.assignment) ->
      let r = Instance.request inst i in
      let row = Bytes.make width ' ' in
      (* temporal window *)
      for c = col r.Request.start_min to col r.Request.end_max do
        Bytes.set row c '.'
      done;
      if a.Solution.accepted then
        for c = col a.Solution.t_start to col a.Solution.t_end do
          Bytes.set row c '#'
        done;
      Buffer.add_string buf
        (Printf.sprintf "%*s  |%s|  %s\n" name_width r.Request.name
           (Bytes.to_string row)
           (if a.Solution.accepted then
              Printf.sprintf "[%.2f, %.2f]" a.Solution.t_start a.Solution.t_end
            else "rejected")))
    sol.Solution.assignments;
  Buffer.contents buf

let print ?width inst sol = print_string (render ?width inst sol)
