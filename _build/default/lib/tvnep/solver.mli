(** One-call interface: choose a formulation (Δ / Σ / cΣ), an objective,
    build the MIP and optimize it with the branch-and-bound engine.

    This is the API the evaluation harness, the examples and the CLI use;
    it returns both the solver statistics the paper plots (runtime, gap,
    node counts) and the decoded {!Solution.t}. *)

type model_kind = Delta | Sigma | Csigma

val model_kind_to_string : model_kind -> string

type options = {
  kind : model_kind;
  objective : Objective.t;
  use_cuts : bool;       (** cΣ only: dependency ranges + state presolve *)
  pairwise_cuts : bool;  (** cΣ only: Constraint (20) *)
  seed_with_greedy : bool;
      (** seed branch-and-bound with the lifted greedy solution (access
          control + fixed mappings only) — the greedy/exact combination
          suggested in the paper's conclusion *)
  mip : Mip.Branch_bound.params;
}

val default_options : options
(** cΣ, access control, all cuts, default MIP parameters. *)

type outcome = {
  status : Mip.Branch_bound.status;
  solution : Solution.t option;  (** decoded incumbent, when one exists *)
  objective : float option;      (** incumbent objective value *)
  bound : float;                 (** proved dual bound *)
  gap : float;                   (** relative gap as defined in [Mip] *)
  runtime : float;               (** seconds *)
  nodes : int;
  lp_iterations : int;
  model_vars : int;
  model_rows : int;
}

val build : Instance.t -> options -> Formulation.t * Objective.extras
(** The assembled MIP without solving it (for inspection/tests). *)

val solve : Instance.t -> options -> outcome

val solve_lp_relaxation : Instance.t -> options -> Lp.Simplex.result
(** Root LP relaxation only — used to compare formulation strength
    (Section III's Δ-vs-Σ discussion). *)
