(** The physical (substrate) network: a digraph with one scalar capacity
    per node and per directed link (Table I of the paper). *)

type t

val make :
  Graphs.Digraph.t -> node_cap:float array -> link_cap:float array -> t
(** @raise Invalid_argument when an array length disagrees with the graph
    or a capacity is negative. *)

val uniform : Graphs.Digraph.t -> node_cap:float -> link_cap:float -> t
(** Same capacity on every node / link — the paper's grid substrate. *)

val graph : t -> Graphs.Digraph.t

val num_nodes : t -> int

val num_links : t -> int

val node_cap : t -> int -> float
(** @raise Invalid_argument on an unknown node. *)

val link_cap : t -> int -> float
(** Capacity of the directed link with the given edge id. *)

val total_node_capacity : t -> float

val pp : Format.formatter -> t -> unit
