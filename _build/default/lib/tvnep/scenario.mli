(** The synthetic workload of the paper's evaluation (Section VI-A):

    - substrate: a bidirected grid (paper: 4×5, so 20 nodes and 62
      directed links), node capacity 3.5, link capacity 5;
    - requests: 5-node stars, all links directed towards or away from the
      center (picked at random per request), demands uniform in [1, 2];
    - arrivals: Poisson process with 1/hour inter-arrival mean, 20
      requests per workload;
    - durations: Weibull(shape 2, scale 4) — mean ≈ 3.5 hours;
    - node mappings fixed a priori, uniformly at random;
    - temporal flexibility added on top of each duration, swept from 0 to
      6 hours in 30-minute steps in the paper's plots.

    [paper] reproduces those parameters; [scaled] is a smaller default
    sized for the pure-OCaml MIP stack (see DESIGN.md §2); both are plain
    records, so any dimension can be overridden. *)

type params = {
  grid_rows : int;
  grid_cols : int;
  node_capacity : float;
  link_capacity : float;
  star_leaves : int;      (** request size = leaves + 1 *)
  demand_lo : float;
  demand_hi : float;
  num_requests : int;
  arrival_rate : float;   (** Poisson arrivals per hour *)
  weibull_shape : float;
  weibull_scale : float;
  min_duration : float;   (** durations are clamped from below *)
  flexibility : float;    (** slack added to every request window *)
}

val paper : params
val scaled : params

val generate : Workload.Rng.t -> params -> Instance.t
(** A full instance with fixed node mappings; the horizon is the latest
    window end.  Deterministic in the generator state. *)

val sweep : seed:int64 -> params -> flexibilities:float list -> Instance.t list
(** One instance per flexibility value, all sharing the same arrivals,
    durations, demands and node mappings (regenerated from the same
    seed) — exactly how the paper varies only the flexibility axis. *)
