(** A virtual network request (Tables II and VI of the paper): a virtual
    topology with node/link demands plus the temporal triple
    (duration [d], earliest start [t^s], latest end [t^e]). *)

type t = private {
  name : string;
  graph : Graphs.Digraph.t;      (** virtual topology *)
  node_demand : float array;     (** demand per virtual node *)
  link_demand : float array;     (** demand per virtual link (edge id) *)
  duration : float;              (** d_R > 0 *)
  start_min : float;             (** t^s_R *)
  end_max : float;               (** t^e_R *)
}

val make :
  name:string ->
  graph:Graphs.Digraph.t ->
  node_demand:float array ->
  link_demand:float array ->
  duration:float ->
  start_min:float ->
  end_max:float ->
  t
(** @raise Invalid_argument on arity mismatches, non-positive duration,
    negative demands, negative [start_min], a window shorter than the
    duration, or a self-loop in the virtual topology. *)

val flexibility : t -> float
(** [t^e - t^s - d]: the temporal slack the provider may exploit. *)

val with_flexibility : t -> float -> t
(** Same request with [end_max] set to [start_min + duration + flex] — the
    knob the paper's evaluation sweeps.
    @raise Invalid_argument when [flex < 0]. *)

val latest_start : t -> float
(** [t^e - d]. *)

val earliest_end : t -> float
(** [t^s + d]. *)

val num_vnodes : t -> int
val num_vlinks : t -> int

val total_node_demand : t -> float
(** [Σ_{N_v} c_R(N_v)] — the per-request revenue weight of the paper's
    access-control objective. *)

val pp : Format.formatter -> t -> unit
