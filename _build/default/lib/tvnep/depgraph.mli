(** Temporal dependency graph and the cuts of Table XIV.

    Vertices are the abstract start/end points of every request; a directed
    edge [v -> w] states that [v] must occur strictly before [w] in every
    feasible schedule, derived a priori from the temporal windows
    ([latest v < earliest w]).  We additionally add the always-valid edge
    [start_R -> end_R] (durations are positive), which strengthens the
    derived ranges; both graphs are provably acyclic.

    Edge weights are 1 when the source is a start vertex.  Because starts
    map bijectively onto events in the cΣ-Model, the number of distinct
    start-ancestors of a vertex lower-bounds its event index, and start
    descendants bound it from above — yielding the per-vertex event ranges
    of Constraint (19).  Longest weighted path distances give the pairwise
    cuts of Constraint (20). *)

type kind = Start | End

type vertex = { req : int; kind : kind }

val node_of_vertex : vertex -> int
(** Dense encoding: [2*req] for a start, [2*req + 1] for an end. *)

val vertex_of_node : int -> vertex

val earliest : Instance.t -> vertex -> float
(** Earliest possible time of the vertex (paper's [earliest]). *)

val latest : Instance.t -> vertex -> float

val graph : ?self_edges:bool -> Instance.t -> Graphs.Digraph.t
(** The dependency graph on [2·|R|] vertices.  [self_edges] (default true)
    adds the [start_R -> end_R] edges. *)

type event_ranges = {
  start_lo : int array;  (** per request, inclusive 0-based event index *)
  start_hi : int array;
  end_lo : int array;
  end_hi : int array;
}

val trivial_ranges : Instance.t -> event_ranges
(** The uncut cΣ ranges: starts on events [0 .. k-1], ends on [1 .. k]. *)

val csigma_event_ranges : Instance.t -> event_ranges
(** Ranges tightened by the dependency analysis (Constraint (19)). *)

type pairwise_cut = { before : vertex; after : vertex; min_gap : int }
(** [event_index(after) >= event_index(before) + min_gap]. *)

val pairwise_cuts : Instance.t -> pairwise_cut list
(** All pairs at positive longest-path distance (Constraint (20)). *)
