type options = { relax_integrality : bool }

let default_options = { relax_integrality = false }

let build ?(options = default_options) inst =
  let k = Instance.num_requests inst in
  if k = 0 then invalid_arg "Delta_model.build: no requests";
  let sub = inst.Instance.substrate in
  let n_nodes = Substrate.num_nodes sub and n_links = Substrate.num_links sub in
  let model = Lp.Model.create ~name:"delta" () in
  let embeddings =
    Formulation.add_embeddings model inst
      ~relax_integrality:options.relax_integrality
  in
  let n_events, chi_start, chi_end, t_event, t_start, t_end =
    Formulation.add_two_k_event_skeleton model inst
      ~relax_integrality:options.relax_integrality
  in
  let n_states = n_events - 1 in
  (* Δ variables: one per event per resource, within [-cap, cap]. *)
  let delta_node =
    Array.init n_events (fun e ->
        Array.init n_nodes (fun s ->
            let c = Substrate.node_cap sub s in
            Lp.Model.add_var model ~lb:(-.c) ~ub:c
              (Printf.sprintf "dN_e%d_%d" e s)))
  in
  let delta_link =
    Array.init n_events (fun e ->
        Array.init n_links (fun l ->
            let c = Substrate.link_cap sub l in
            Lp.Model.add_var model ~lb:(-.c) ~ub:c
              (Printf.sprintf "dL_e%d_%d" e l)))
  in
  (* Constraints (3)-(6): conditional assignment of Δ via big-M. *)
  let chi_at chis event =
    Array.to_list chis
    |> List.find_map (fun (j, v) -> if j = event then Some v else None)
  in
  let post_selection (dvar : Lp.Model.var) cap alloc ~chi_s ~chi_e =
    let d = Lp.Expr.var (dvar :> int) in
    (match chi_s with
    | None -> ()
    | Some (v : Lp.Model.var) ->
      let slack = Lp.Expr.sub (Lp.Expr.const 1.0) (Lp.Expr.var (v :> int)) in
      (* (3)  Δ <= alloc + cap (1 - χ⁺) *)
      Lp.Model.add_le model
        (Lp.Expr.sub d (Lp.Expr.add alloc (Lp.Expr.scale cap slack)))
        0.0;
      (* (4)  Δ >= alloc - 2 cap (1 - χ⁺) *)
      Lp.Model.add_ge model
        (Lp.Expr.sub d
           (Lp.Expr.sub alloc (Lp.Expr.scale (2.0 *. cap) slack)))
        0.0);
    match chi_e with
    | None -> ()
    | Some (v : Lp.Model.var) ->
      let slack = Lp.Expr.sub (Lp.Expr.const 1.0) (Lp.Expr.var (v :> int)) in
      (* (5)  Δ <= -alloc + 2 cap (1 - χ⁻) *)
      Lp.Model.add_le model
        (Lp.Expr.sub d
           (Lp.Expr.add
              (Lp.Expr.scale (-1.0) alloc)
              (Lp.Expr.scale (2.0 *. cap) slack)))
        0.0;
      (* (6)  Δ >= -alloc - cap (1 - χ⁻) *)
      Lp.Model.add_ge model
        (Lp.Expr.sub d
           (Lp.Expr.sub
              (Lp.Expr.scale (-1.0) alloc)
              (Lp.Expr.scale cap slack)))
        0.0
  in
  for e = 0 to n_events - 1 do
    for req = 0 to k - 1 do
      let emb = embeddings.(req) in
      let chi_s = chi_at chi_start.(req) e and chi_e = chi_at chi_end.(req) e in
      (* No zero-allocation skipping here: Δ_e(r) must be pinned to 0 even
         when the event's request never touches resource r, or negative Δ
         values could cancel other requests' cumulative allocations. *)
      for s = 0 to n_nodes - 1 do
        post_selection delta_node.(e).(s) (Substrate.node_cap sub s)
          emb.Embedding.node_alloc.(s) ~chi_s ~chi_e
      done;
      for l = 0 to n_links - 1 do
        post_selection delta_link.(e).(l) (Substrate.link_cap sub l)
          emb.Embedding.link_alloc.(l) ~chi_s ~chi_e
      done
    done
  done;
  (* Cumulative state loads and capacity feasibility. *)
  let state_node_load = Array.make_matrix n_states n_nodes Lp.Expr.zero in
  let state_link_load = Array.make_matrix n_states n_links Lp.Expr.zero in
  for i = 0 to n_states - 1 do
    for s = 0 to n_nodes - 1 do
      let prev = if i = 0 then Lp.Expr.zero else state_node_load.(i - 1).(s) in
      state_node_load.(i).(s) <-
        Lp.Expr.add prev (Lp.Expr.var (delta_node.(i).(s) :> int));
      Lp.Model.add_le model
        ~name:(Printf.sprintf "cap_s%d_n%d" i s)
        state_node_load.(i).(s) (Substrate.node_cap sub s)
    done;
    for l = 0 to n_links - 1 do
      let prev = if i = 0 then Lp.Expr.zero else state_link_load.(i - 1).(l) in
      state_link_load.(i).(l) <-
        Lp.Expr.add prev (Lp.Expr.var (delta_link.(i).(l) :> int));
      Lp.Model.add_le model
        ~name:(Printf.sprintf "cap_s%d_l%d" i l)
        state_link_load.(i).(l) (Substrate.link_cap sub l)
    done
  done;
  let lift (sol : Solution.t) =
    let arr = Array.make (Lp.Model.num_vars model) 0.0 in
    Array.iteri
      (fun req emb ->
        Formulation.lift_embedding inst ~req emb
          sol.Solution.assignments.(req) arr)
      embeddings;
    Array.iteri
      (fun req (a : Solution.assignment) ->
        arr.((t_start.(req) :> int)) <- a.Solution.t_start;
        arr.((t_end.(req) :> int)) <- a.Solution.t_end)
      sol.Solution.assignments;
    let start_pos, end_pos, ev_time =
      Formulation.endpoint_order sol ~n_events
    in
    Array.iteri (fun i (v : Lp.Model.var) -> arr.((v :> int)) <- ev_time.(i)) t_event;
    for req = 0 to k - 1 do
      ignore (Formulation.set_chi chi_start.(req) start_pos.(req) arr);
      ignore (Formulation.set_chi chi_end.(req) end_pos.(req) arr);
      (* Δ at the request's endpoints: ±alloc on every resource. *)
      let node_alloc, link_alloc =
        Formulation.alloc_values inst ~req sol.Solution.assignments.(req)
      in
      for s = 0 to n_nodes - 1 do
        arr.((delta_node.(start_pos.(req)).(s) :> int)) <- node_alloc.(s);
        arr.((delta_node.(end_pos.(req)).(s) :> int)) <- -.node_alloc.(s)
      done;
      for l = 0 to n_links - 1 do
        arr.((delta_link.(start_pos.(req)).(l) :> int)) <- link_alloc.(l);
        arr.((delta_link.(end_pos.(req)).(l) :> int)) <- -.link_alloc.(l)
      done
    done;
    arr
  in
  {
    Formulation.model;
    inst;
    n_events;
    n_states;
    embeddings;
    t_start;
    t_end;
    t_event;
    chi_start;
    chi_end;
    state_node_load;
    state_link_load;
    lift;
  }
