type t = {
  req_index : int;
  x_r : Lp.Model.var;
  x_v : (int * int -> Lp.Expr.t) option;
  x_e : Lp.Model.var array array;
  node_alloc : Lp.Expr.t array;
  link_alloc : Lp.Expr.t array;
}

let node_indicator inst emb ~vnode ~snode =
  match emb.x_v with
  | Some f -> f (vnode, snode)
  | None ->
    (match Instance.node_mapping inst emb.req_index with
    | Some fixed ->
      if fixed.(vnode) = snode then Lp.Expr.var (emb.x_r :> int)
      else Lp.Expr.zero
    | None -> assert false)

let build model inst ~req ~relax_integrality =
  let r = Instance.request inst req in
  let name = r.Request.name in
  let sub = inst.Instance.substrate in
  let sgraph = Substrate.graph sub in
  let n_sub = Substrate.num_nodes sub in
  let n_slinks = Substrate.num_links sub in
  let n_vnodes = Request.num_vnodes r in
  let n_vlinks = Request.num_vlinks r in
  let kind = if relax_integrality then Lp.Model.Continuous else Lp.Model.Binary in
  let x_r =
    Lp.Model.add_var model ~lb:0.0 ~ub:1.0 ~kind (Printf.sprintf "xR_%s" name)
  in
  let fixed = Instance.node_mapping inst req in
  (* x_V variables only in the free-mapping case. *)
  let x_v_vars =
    match fixed with
    | Some _ -> None
    | None ->
      Some
        (Array.init n_vnodes (fun v ->
             Array.init n_sub (fun s ->
                 Lp.Model.add_var model ~lb:0.0 ~ub:1.0 ~kind
                   (Printf.sprintf "xV_%s_%d_%d" name v s))))
  in
  let x_v_expr (v, s) =
    match (x_v_vars, fixed) with
    | Some vars, _ -> Lp.Expr.var (vars.(v).(s) :> int)
    | None, Some map ->
      if map.(v) = s then Lp.Expr.var (x_r :> int) else Lp.Expr.zero
    | None, None -> assert false
  in
  (* Constraint (1): each virtual node maps to exactly one substrate node
     iff the request is embedded.  Trivially satisfied under fixed maps. *)
  (match x_v_vars with
  | None -> ()
  | Some vars ->
    Array.iteri
      (fun v row ->
        let lhs =
          Lp.Expr.sum
            (Array.to_list
               (Array.map (fun (var : Lp.Model.var) -> Lp.Expr.var (var :> int)) row))
        in
        Lp.Model.add_eq model
          ~name:(Printf.sprintf "map_%s_%d" name v)
          (Lp.Expr.sub lhs (Lp.Expr.var (x_r :> int)))
          0.0)
      vars);
  let x_e =
    Array.init n_vlinks (fun lv ->
        Array.init n_slinks (fun ls ->
            Lp.Model.add_var model ~lb:0.0 ~ub:1.0
              (Printf.sprintf "xE_%s_%d_%d" name lv ls)))
  in
  (* Constraint (2): per virtual link, a unit splittable flow from the host
     of its tail to the host of its head. *)
  List.iter
    (fun (lv : Graphs.Digraph.edge) ->
      for s = 0 to n_sub - 1 do
        let outflow =
          Lp.Expr.sum
            (List.map
               (fun (e : Graphs.Digraph.edge) ->
                 Lp.Expr.var (x_e.(lv.id).(e.id) :> int))
               (Graphs.Digraph.out_edges sgraph s))
        in
        let inflow =
          Lp.Expr.sum
            (List.map
               (fun (e : Graphs.Digraph.edge) ->
                 Lp.Expr.var (x_e.(lv.id).(e.id) :> int))
               (Graphs.Digraph.in_edges sgraph s))
        in
        let rhs = Lp.Expr.sub (x_v_expr (lv.src, s)) (x_v_expr (lv.dst, s)) in
        Lp.Model.add_eq model
          ~name:(Printf.sprintf "flow_%s_%d_%d" name lv.id s)
          (Lp.Expr.sub (Lp.Expr.sub outflow inflow) rhs)
          0.0
      done)
    (Graphs.Digraph.edges r.Request.graph);
  (* Table V macros as expressions. *)
  let node_alloc =
    Array.init n_sub (fun s ->
        Lp.Expr.sum
          (List.init n_vnodes (fun v ->
               Lp.Expr.scale r.Request.node_demand.(v) (x_v_expr (v, s)))))
  in
  let link_alloc =
    Array.init n_slinks (fun ls ->
        Lp.Expr.sum
          (List.init n_vlinks (fun lv ->
               Lp.Expr.scale r.Request.link_demand.(lv)
                 (Lp.Expr.var (x_e.(lv).(ls) :> int)))))
  in
  let x_v =
    match x_v_vars with
    | None -> None
    | Some _ -> Some x_v_expr
  in
  { req_index = req; x_r; x_v; x_e; node_alloc; link_alloc }

let extract inst ~req emb value_of =
  let r = Instance.request inst req in
  let accepted = value_of (emb.x_r :> int) > 0.5 in
  if not accepted then Solution.rejected r
  else begin
    let n_vnodes = Request.num_vnodes r in
    let node_map =
      match Instance.node_mapping inst req with
      | Some fixed -> Array.copy fixed
      | None ->
        Array.init n_vnodes (fun v ->
            let n_sub = Substrate.num_nodes inst.Instance.substrate in
            let best = ref (-1) and best_v = ref 0.5 in
            for s = 0 to n_sub - 1 do
              let x = Lp.Expr.eval (node_indicator inst emb ~vnode:v ~snode:s) value_of in
              if x > !best_v then begin
                best := s;
                best_v := x
              end
            done;
            !best)
    in
    let link_flows =
      Array.map
        (fun row ->
          let acc = ref [] in
          Array.iteri
            (fun ls (var : Lp.Model.var) ->
              let v = value_of (var :> int) in
              if v > 1e-9 then acc := (ls, v) :: !acc)
            row;
          List.rev !acc)
        emb.x_e
    in
    {
      Solution.accepted = true;
      node_map;
      link_flows;
      t_start = 0.0;
      (* schedule filled by the temporal layer *)
      t_end = 0.0;
    }
  end
