(** Static (time-invariant) embedding variables and constraints shared by
    every TVNEP formulation — Tables III–V of the paper.

    Orientation convention: a virtual link [(src, dst)] is embedded as one
    unit of splittable flow from the substrate host of [src] to the host of
    [dst] (net outflow [x_V(src,·) - x_V(dst,·)] at every substrate node).

    When the instance carries fixed node mappings (the paper's evaluation
    fixes them a priori), no [x_V] variables are created: the mapping
    indicator degenerates to [x_R] at the prescribed host and 0 elsewhere,
    which both shrinks the model and strengthens its relaxation. *)

type t = {
  req_index : int;
  x_r : Lp.Model.var;  (** accept/reject indicator of the request *)
  x_v : (int * int -> Lp.Expr.t) option;
      (** [(virtual node, substrate node) -> mapping indicator]; [None]
          exactly when mappings are fixed (use {!node_indicator}) *)
  x_e : Lp.Model.var array array;
      (** [x_e.(vlink).(sedge)] — flow fraction variables in [0,1] *)
  node_alloc : Lp.Expr.t array;
      (** per substrate node: the allocᵥ macro of Table V *)
  link_alloc : Lp.Expr.t array;  (** per substrate link: alloc_E *)
}

val node_indicator : Instance.t -> t -> vnode:int -> snode:int -> Lp.Expr.t
(** The mapping indicator [x_V(vnode, snode)] as an expression, valid in
    both the fixed and the free-mapping case. *)

val build :
  Lp.Model.t -> Instance.t -> req:int -> relax_integrality:bool -> t
(** Creates the variables ([x_R], [x_V] if mappings are free, [x_E]) and
    posts Constraints (1) (node mapping) and (2) (flow construction).
    [relax_integrality] makes [x_R]/[x_V] continuous in [0,1] (used by the
    greedy's inner LPs where acceptance is already decided). *)

val extract :
  Instance.t -> req:int -> t -> (int -> float) -> Solution.assignment
(** Reads a solved variable valuation back into a solution assignment.
    The request counts as accepted when [x_R > 0.5]; flows below [1e-9]
    are dropped. *)
