type t = {
  name : string;
  graph : Graphs.Digraph.t;
  node_demand : float array;
  link_demand : float array;
  duration : float;
  start_min : float;
  end_max : float;
}

let make ~name ~graph ~node_demand ~link_demand ~duration ~start_min ~end_max =
  let fail msg = invalid_arg (Printf.sprintf "Request.make %s: %s" name msg) in
  if Array.length node_demand <> Graphs.Digraph.num_nodes graph then
    fail "node demand arity";
  if Array.length link_demand <> Graphs.Digraph.num_edges graph then
    fail "link demand arity";
  Array.iter (fun d -> if d < 0.0 then fail "negative node demand") node_demand;
  Array.iter (fun d -> if d < 0.0 then fail "negative link demand") link_demand;
  if duration <= 0.0 then fail "duration must be positive";
  if start_min < 0.0 then fail "negative earliest start";
  if end_max < start_min +. duration -. 1e-12 then
    fail "window shorter than duration";
  List.iter
    (fun (e : Graphs.Digraph.edge) ->
      if e.src = e.dst then fail "self-loop in virtual topology")
    (Graphs.Digraph.edges graph);
  {
    name;
    graph;
    node_demand = Array.copy node_demand;
    link_demand = Array.copy link_demand;
    duration;
    start_min;
    end_max;
  }

let flexibility r = r.end_max -. r.start_min -. r.duration

let with_flexibility r flex =
  if flex < 0.0 then invalid_arg "Request.with_flexibility: negative";
  { r with end_max = r.start_min +. r.duration +. flex }

let latest_start r = r.end_max -. r.duration
let earliest_end r = r.start_min +. r.duration
let num_vnodes r = Graphs.Digraph.num_nodes r.graph
let num_vlinks r = Graphs.Digraph.num_edges r.graph
let total_node_demand r = Array.fold_left ( +. ) 0.0 r.node_demand

let pp ppf r =
  Format.fprintf ppf "%s: %d vnodes, %d vlinks, d=%g window=[%g,%g] flex=%g"
    r.name (num_vnodes r) (num_vlinks r) r.duration r.start_min r.end_max
    (flexibility r)
