(** A complete TVNEP instance: substrate, request set, time horizon [T]
    and (optionally) the a-priori fixed node mappings used throughout the
    paper's evaluation (Section VI-A). *)

type t = private {
  substrate : Substrate.t;
  requests : Request.t array;
  horizon : float;  (** T; every request window must fit inside [0, T] *)
  node_mappings : int array array option;
      (** [mappings.(r).(v)] is the substrate node hosting virtual node [v]
          of request [r]; [None] leaves node placement to the solver. *)
}

val make :
  ?node_mappings:int array array ->
  substrate:Substrate.t ->
  requests:Request.t array ->
  horizon:float ->
  unit ->
  t
(** @raise Invalid_argument when a request window exceeds the horizon, the
    horizon is non-positive, or a node mapping has the wrong shape /
    an out-of-range substrate node. *)

val num_requests : t -> int

val request : t -> int -> Request.t
(** @raise Invalid_argument on an unknown index. *)

val node_mapping : t -> int -> int array option
(** Fixed mapping of one request, when present. *)

val has_fixed_mappings : t -> bool

val total_virtual_links : t -> int
(** Σ over requests of their virtual link counts — the big-M of the
    link-disabling objective. *)

val with_flexibility : t -> float -> t
(** Applies {!Request.with_flexibility} to every request and extends the
    horizon to cover the widened windows. *)

val with_requests : t -> Request.t array -> ?node_mappings:int array array -> unit -> t
(** Same substrate/horizon with a different request set (greedy iterations
    grow the set one request at a time). *)

val pp : Format.formatter -> t -> unit
