lib/statsutil/table.mli:
