lib/statsutil/table.ml: Array List Printf String
