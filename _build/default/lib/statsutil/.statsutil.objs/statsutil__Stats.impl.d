lib/statsutil/stats.ml: Array Float Format List
