lib/statsutil/stats.mli: Format
