type align = Left | Right

type t = { headers : string list; mutable rows_rev : string list list }

let create ~headers =
  if headers = [] then invalid_arg "Table.create: no headers";
  { headers; rows_rev = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows_rev <- row :: t.rows_rev

let add_float_row t ?(fmt = Printf.sprintf "%.4g") label xs =
  add_row t (label :: List.map fmt xs);
  t

let render ?(align = Right) t =
  let rows = List.rev t.rows_rev in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  let pad i cell =
    let w = widths.(i) in
    let gap = w - String.length cell in
    match align with
    | Left -> cell ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ cell
  in
  let render_row row = String.concat "  " (List.mapi pad row) in
  let sep =
    String.concat "  "
      (List.init ncols (fun i -> String.make widths.(i) '-'))
  in
  String.concat "\n" (render_row t.headers :: sep :: List.map render_row rows)

let print ?align t =
  print_string (render ?align t);
  print_newline ()
