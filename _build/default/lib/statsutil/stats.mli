(** Descriptive statistics for the benchmark harness.

    The paper reports per-flexibility distributions over 24 scenarios
    (boxplot-style: median and quartiles); {!summarize} computes the
    five-number summary the bench tables print. *)

val mean : float list -> float
(** @raise Invalid_argument on the empty list. *)

val variance : float list -> float
(** Unbiased sample variance; 0 for singletons.
    @raise Invalid_argument on the empty list. *)

val stddev : float list -> float

val quantile : float -> float list -> float
(** [quantile q xs] with linear interpolation between order statistics,
    [q] in [0, 1].  @raise Invalid_argument on the empty list or a [q]
    outside [0, 1]. *)

val median : float list -> float

type summary = {
  count : int;
  min : float;
  q1 : float;
  med : float;
  q3 : float;
  max : float;
  avg : float;
}

val summarize : float list -> summary
(** @raise Invalid_argument on the empty list. *)

val pp_summary : Format.formatter -> summary -> unit

val geometric_mean : float list -> float
(** @raise Invalid_argument on empty input or non-positive values. *)
