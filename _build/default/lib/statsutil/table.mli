(** Plain-text tables.

    The bench harness prints one table per reproduced figure; this module
    handles column sizing and alignment so every figure reads uniformly. *)

type align = Left | Right

type t

val create : headers:string list -> t
(** @raise Invalid_argument on an empty header list. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument when the arity differs from the headers. *)

val add_float_row : t -> ?fmt:(float -> string) -> string -> float list -> t
(** Convenience: a label cell followed by formatted floats (default
    [%.4g]).  Returns the table for chaining. *)

val render : ?align:align -> t -> string
(** Fully rendered table with a header separator line. *)

val print : ?align:align -> t -> unit
(** [render] to stdout followed by a newline flush. *)
