let check_nonempty name = function
  | [] -> invalid_arg (name ^ ": empty list")
  | _ -> ()

let mean xs =
  check_nonempty "Stats.mean" xs;
  List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let variance xs =
  check_nonempty "Stats.variance" xs;
  match xs with
  | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    ss /. float_of_int (List.length xs - 1)

let stddev xs = sqrt (variance xs)

let quantile q xs =
  check_nonempty "Stats.quantile" xs;
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q outside [0,1]";
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then a.(lo)
  else begin
    let frac = pos -. float_of_int lo in
    ((1.0 -. frac) *. a.(lo)) +. (frac *. a.(hi))
  end

let median xs = quantile 0.5 xs

type summary = {
  count : int;
  min : float;
  q1 : float;
  med : float;
  q3 : float;
  max : float;
  avg : float;
}

let summarize xs =
  check_nonempty "Stats.summarize" xs;
  {
    count = List.length xs;
    min = List.fold_left Float.min infinity xs;
    q1 = quantile 0.25 xs;
    med = median xs;
    q3 = quantile 0.75 xs;
    max = List.fold_left Float.max neg_infinity xs;
    avg = mean xs;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d min=%.3g q1=%.3g med=%.3g q3=%.3g max=%.3g avg=%.3g"
    s.count s.min s.q1 s.med s.q3 s.max s.avg

let geometric_mean xs =
  check_nonempty "Stats.geometric_mean" xs;
  List.iter
    (fun x -> if x <= 0.0 then invalid_arg "Stats.geometric_mean: non-positive")
    xs;
  exp (mean (List.map log xs))
