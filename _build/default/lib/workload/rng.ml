(* splitmix64 (Steele, Lea & Flood 2014): tiny state, passes BigCrush, and
   trivially splittable — ideal for reproducible per-scenario streams. *)

type t = { mutable state : int64 }

let create seed = { state = seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = create (next_int64 t)

let float t =
  (* 53 high bits to a double in [0, 1) *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float_range t lo hi =
  if lo > hi then invalid_arg "Rng.float_range";
  lo +. (float t *. (hi -. lo))

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  (* Rejection-free modulo is fine for our small bounds. *)
  let v = Int64.shift_right_logical (next_int64 t) 1 in
  Int64.to_int (Int64.rem v (Int64.of_int bound))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
