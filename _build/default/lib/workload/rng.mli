(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic piece of the evaluation (arrivals, durations, resource
    demands, node mappings) draws from an explicit [Rng.t] so that the 24
    workloads of the paper's evaluation are reproducible from their seeds,
    independent of the global [Random] state. *)

type t

val create : int64 -> t
(** Seeded generator.  Equal seeds produce equal streams. *)

val split : t -> t
(** A statistically independent generator derived from (and advancing) the
    parent — used to give each scenario its own stream. *)

val next_int64 : t -> int64
(** Uniform over all 2⁶⁴ values. *)

val float : t -> float
(** Uniform in [0, 1) with 53-bit resolution. *)

val float_range : t -> float -> float -> float
(** Uniform in [\[lo, hi)].  @raise Invalid_argument when [lo > hi]. *)

val int : t -> int -> int
(** [int rng bound] is uniform in [\[0, bound)].
    @raise Invalid_argument when [bound <= 0]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element.  @raise Invalid_argument on an empty array. *)
