lib/workload/distributions.ml: Array Float List Rng
