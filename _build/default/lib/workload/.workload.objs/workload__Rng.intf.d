lib/workload/rng.mli:
