lib/workload/distributions.mli: Rng
