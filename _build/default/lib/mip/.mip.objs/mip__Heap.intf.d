lib/mip/heap.mli:
