lib/mip/heap.ml: Array
