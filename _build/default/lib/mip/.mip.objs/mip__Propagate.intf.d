lib/mip/propagate.mli: Lp
