lib/mip/branch_bound.mli: Lp
