lib/mip/branch_bound.ml: Array Float Heap List Logs Lp Printf Propagate Unix
