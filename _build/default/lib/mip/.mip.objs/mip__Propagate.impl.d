lib/mip/propagate.ml: Array Float Lina List Lp
