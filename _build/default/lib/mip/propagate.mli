(** Node-level domain propagation (bound tightening).

    Before paying for an LP re-solve, every branch-and-bound node runs a
    few rounds of activity-based constraint propagation: for each row
    [lo <= a·x <= hi] the minimal/maximal activities implied by the
    current column bounds either prove the node infeasible outright or
    tighten individual column bounds (rounded for integer columns).  On
    the TVNEP models this fixes cascades of event-assignment binaries
    (rows of the form [Σ χ = 1]) the moment one of them is branched on,
    pruning most infeasible nodes without any simplex work. *)

type t

val prepare : Lp.Std_form.t -> t
(** Precomputes the row-wise view of the constraint matrix. *)

type outcome =
  | Infeasible_node
  | Tightened of int  (** number of bound changes applied in place *)

val run :
  ?max_rounds:int -> t -> lb:float array -> ub:float array -> outcome
(** Propagates to (bounded) fixpoint, mutating [lb]/[ub] (full column
    space: structurals then logicals).  Logical column bounds are treated
    as the row ranges and are never modified.  [max_rounds] defaults
    to 10. *)
