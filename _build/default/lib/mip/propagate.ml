type t = {
  sf : Lp.Std_form.t;
  (* Row-wise structural view: for every row the (column, coeff) pairs,
     logical columns excluded (their bounds are the row ranges). *)
  row_cols : int array array;
  row_coefs : float array array;
}

let prepare sf =
  let n_struct = sf.Lp.Std_form.n_struct in
  let n_rows = sf.Lp.Std_form.n_rows in
  let acc = Array.make n_rows [] in
  for j = 0 to n_struct - 1 do
    Lina.Csc.iter_col sf.Lp.Std_form.a j (fun i v ->
        acc.(i) <- (j, v) :: acc.(i))
  done;
  {
    sf;
    row_cols = Array.map (fun l -> Array.of_list (List.map fst l)) acc;
    row_coefs = Array.map (fun l -> Array.of_list (List.map snd l)) acc;
  }

type outcome = Infeasible_node | Tightened of int

exception Dead

let tol = 1e-7

let run ?(max_rounds = 10) p ~lb ~ub =
  let sf = p.sf in
  let n_struct = sf.Lp.Std_form.n_struct in
  let n_rows = sf.Lp.Std_form.n_rows in
  let changes = ref 0 in
  let round_changes = ref 1 in
  let rounds = ref 0 in
  try
    (* Bounds may already be crossed by the branching itself. *)
    for j = 0 to n_struct - 1 do
      if lb.(j) > ub.(j) +. tol then raise Dead
    done;
    while !round_changes > 0 && !rounds < max_rounds do
      round_changes := 0;
      incr rounds;
      for i = 0 to n_rows - 1 do
        let cols = p.row_cols.(i) and coefs = p.row_coefs.(i) in
        let lo = lb.(n_struct + i) and hi = ub.(n_struct + i) in
        (* Minimal and maximal row activity under current bounds. *)
        let minact = ref 0.0 and maxact = ref 0.0 in
        for k = 0 to Array.length cols - 1 do
          let j = cols.(k) and a = coefs.(k) in
          if a > 0.0 then begin
            minact := !minact +. (a *. lb.(j));
            maxact := !maxact +. (a *. ub.(j))
          end
          else begin
            minact := !minact +. (a *. ub.(j));
            maxact := !maxact +. (a *. lb.(j))
          end
        done;
        let scale =
          Float.max 1.0 (Float.max (Float.abs lo) (Float.abs hi))
        in
        if !minact > hi +. (tol *. scale) || !maxact < lo -. (tol *. scale)
        then raise Dead;
        (* Per-column tightening from the residual activities. *)
        for k = 0 to Array.length cols - 1 do
          let j = cols.(k) and a = coefs.(k) in
          let integer = sf.Lp.Std_form.integer.(j) in
          let apply_ub new_ub =
            let new_ub =
              if integer then Float.floor (new_ub +. 1e-6) else new_ub
            in
            (* Round-off can push a valid bound a few ulps past the other
               side; snap instead of creating a micro-crossing. *)
            let new_ub =
              if new_ub < lb.(j) && lb.(j) -. new_ub <= tol then lb.(j)
              else new_ub
            in
            if new_ub < ub.(j) -. 1e-9 then begin
              ub.(j) <- new_ub;
              incr changes;
              incr round_changes;
              if lb.(j) > ub.(j) +. tol then raise Dead
            end
          in
          let apply_lb new_lb =
            let new_lb =
              if integer then Float.ceil (new_lb -. 1e-6) else new_lb
            in
            let new_lb =
              if new_lb > ub.(j) && new_lb -. ub.(j) <= tol then ub.(j)
              else new_lb
            in
            if new_lb > lb.(j) +. 1e-9 then begin
              lb.(j) <- new_lb;
              incr changes;
              incr round_changes;
              if lb.(j) > ub.(j) +. tol then raise Dead
            end
          in
          if a > 0.0 then begin
            (* a·x_j <= hi - (minact - a·lb_j) *)
            let rest_min = !minact -. (a *. lb.(j)) in
            if hi < infinity && rest_min > neg_infinity then
              apply_ub ((hi -. rest_min) /. a);
            let rest_max = !maxact -. (a *. ub.(j)) in
            if lo > neg_infinity && rest_max < infinity then
              apply_lb ((lo -. rest_max) /. a)
          end
          else begin
            let rest_min = !minact -. (a *. ub.(j)) in
            if hi < infinity && rest_min > neg_infinity then
              apply_lb ((hi -. rest_min) /. a);
            let rest_max = !maxact -. (a *. lb.(j)) in
            if lo > neg_infinity && rest_max < infinity then
              apply_ub ((lo -. rest_max) /. a)
          end
        done
      done
    done;
    Tightened !changes
  with Dead -> Infeasible_node
