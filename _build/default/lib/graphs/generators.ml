let grid_node ~cols r c = (r * cols) + c

let grid ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Generators.grid";
  let g = Digraph.create (rows * cols) in
  let both u v =
    ignore (Digraph.add_edge g ~src:u ~dst:v);
    ignore (Digraph.add_edge g ~src:v ~dst:u)
  in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let u = grid_node ~cols r c in
      if c + 1 < cols then both u (grid_node ~cols r (c + 1));
      if r + 1 < rows then both u (grid_node ~cols (r + 1) c)
    done
  done;
  g

type star_orientation = To_center | From_center

let star ~leaves ~orientation =
  if leaves < 0 then invalid_arg "Generators.star";
  let g = Digraph.create (leaves + 1) in
  for leaf = 1 to leaves do
    match orientation with
    | To_center -> ignore (Digraph.add_edge g ~src:leaf ~dst:0)
    | From_center -> ignore (Digraph.add_edge g ~src:0 ~dst:leaf)
  done;
  g

let path n =
  if n <= 0 then invalid_arg "Generators.path";
  let g = Digraph.create n in
  for i = 0 to n - 2 do
    ignore (Digraph.add_edge g ~src:i ~dst:(i + 1))
  done;
  g

let ring n =
  if n <= 0 then invalid_arg "Generators.ring";
  let g = Digraph.create n in
  for i = 0 to n - 1 do
    ignore (Digraph.add_edge g ~src:i ~dst:((i + 1) mod n))
  done;
  g

let complete_bidirected n =
  if n < 0 then invalid_arg "Generators.complete_bidirected";
  let g = Digraph.create n in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then ignore (Digraph.add_edge g ~src:u ~dst:v)
    done
  done;
  g

let random_gnp ~n ~p ~uniform =
  if n < 0 || p < 0.0 || p > 1.0 then invalid_arg "Generators.random_gnp";
  let g = Digraph.create n in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v && uniform () < p then ignore (Digraph.add_edge g ~src:u ~dst:v)
    done
  done;
  g
