(** Topology generators.

    All generators produce {!Digraph.t} values; "bidirected" means each
    undirected edge is materialized as two antiparallel directed edges, as
    in the paper's 4×5 grid substrate with 62 directed links. *)

val grid : rows:int -> cols:int -> Digraph.t
(** Bidirected grid; node [(r, c)] has index [r * cols + c]. *)

val grid_node : cols:int -> int -> int -> int
(** [grid_node ~cols r c] is the node index convention used by {!grid}. *)

type star_orientation = To_center | From_center

(** A star on [leaves + 1] nodes, node 0 being the center — the paper's
    request topology ("classical master-slave relationship or a Virtual
    Cluster").  [To_center] directs every edge leaf→center. *)
val star : leaves:int -> orientation:star_orientation -> Digraph.t

val path : int -> Digraph.t
(** Directed path [0 -> 1 -> ... -> n-1]. *)

val ring : int -> Digraph.t
(** Directed cycle. *)

val complete_bidirected : int -> Digraph.t

val random_gnp : n:int -> p:float -> uniform:(unit -> float) -> Digraph.t
(** Erdős–Rényi digraph: each ordered pair (no self-loops) becomes an edge
    with probability [p]; [uniform] supplies U(0,1) samples so callers
    control determinism. *)
