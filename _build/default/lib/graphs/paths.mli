(** Path and ordering algorithms on {!Digraph.t}.

    The temporal dependency graph machinery of the cΣ-Model needs DAG
    checks, reachability closures and maximal (longest) weighted distances;
    the paper computes the latter with Floyd–Warshall on negated weights,
    which {!max_distances} mirrors. *)

val bfs_distances : Digraph.t -> int -> int array
(** Hop distances from a source; [-1] marks unreachable nodes. *)

val is_reachable : Digraph.t -> src:int -> dst:int -> bool

val reachability : Digraph.t -> bool array array
(** [reachability g] is the transitive closure: [(closure.(u)).(v)] is true
    iff there is a (possibly empty) path u→v.  Diagonal entries are true. *)

val topological_sort : Digraph.t -> int list option
(** [Some order] (sources first) when the graph is acyclic, [None]
    otherwise. *)

val is_acyclic : Digraph.t -> bool

val floyd_warshall : Digraph.t -> weight:(Digraph.edge -> float) -> float array array
(** All-pairs shortest path weights; [infinity] marks unreachable pairs and
    the diagonal is 0.  Negative cycles produce negative diagonal entries
    (callers must check when weights can be negative). *)

val max_distances : Digraph.t -> weight:(Digraph.edge -> float) -> float array array
(** All-pairs {e longest} path weights on an acyclic graph, computed — as
    in the paper — by Floyd–Warshall on negated weights.  Unreachable pairs
    are 0 (the paper's convention for [dist_max]); the diagonal is 0.
    @raise Invalid_argument when the graph has a cycle. *)

val shortest_path : Digraph.t -> src:int -> dst:int -> int list option
(** Minimum-hop path as a node list (inclusive), [None] if unreachable. *)
