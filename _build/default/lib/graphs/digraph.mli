(** Simple directed multigraphs over integer nodes [0 .. n-1].

    Both the substrate network and the virtual network requests of the
    TVNEP are digraphs of this type; edges carry no payload here — capacity
    and demand functions live in the TVNEP layer, keyed by edge id. *)

type t

type edge = { id : int; src : int; dst : int }

val create : int -> t
(** [create n] is an empty graph on [n] nodes.
    @raise Invalid_argument when [n < 0]. *)

val add_edge : t -> src:int -> dst:int -> int
(** Appends a directed edge and returns its dense id (insertion order).
    Self-loops and parallel edges are allowed (the model layers reject
    self-loops where the paper's formulation requires it).
    @raise Invalid_argument on out-of-range endpoints. *)

val num_nodes : t -> int
val num_edges : t -> int

val edge : t -> int -> edge
(** @raise Invalid_argument on an unknown id. *)

val edges : t -> edge list
(** All edges in id order. *)

val out_edges : t -> int -> edge list
(** Outgoing edges of a node — the [δ⁺] of the paper. *)

val in_edges : t -> int -> edge list
(** Incoming edges — [δ⁻]. *)

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val nodes : t -> int list

val fold_edges : (edge -> 'a -> 'a) -> t -> 'a -> 'a

val has_edge : t -> src:int -> dst:int -> bool

val reverse : t -> t
(** Graph with every edge flipped (edge ids preserved). *)

val pp : Format.formatter -> t -> unit
