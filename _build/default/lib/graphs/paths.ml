let bfs_distances g src =
  let n = Digraph.num_nodes g in
  if src < 0 || src >= n then invalid_arg "Paths.bfs_distances";
  let dist = Array.make n (-1) in
  dist.(src) <- 0;
  let q = Queue.create () in
  Queue.push src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun (e : Digraph.edge) ->
        if dist.(e.dst) < 0 then begin
          dist.(e.dst) <- dist.(u) + 1;
          Queue.push e.dst q
        end)
      (Digraph.out_edges g u)
  done;
  dist

let is_reachable g ~src ~dst = src = dst || (bfs_distances g src).(dst) >= 0

let reachability g =
  let n = Digraph.num_nodes g in
  Array.init n (fun u ->
      let d = bfs_distances g u in
      Array.init n (fun v -> u = v || d.(v) >= 0))

let topological_sort g =
  let n = Digraph.num_nodes g in
  let indeg = Array.make n 0 in
  List.iter
    (fun (e : Digraph.edge) -> indeg.(e.dst) <- indeg.(e.dst) + 1)
    (Digraph.edges g);
  let q = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.push v q
  done;
  let order = ref [] and seen = ref 0 in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    order := u :: !order;
    incr seen;
    List.iter
      (fun (e : Digraph.edge) ->
        indeg.(e.dst) <- indeg.(e.dst) - 1;
        if indeg.(e.dst) = 0 then Queue.push e.dst q)
      (Digraph.out_edges g u)
  done;
  if !seen = n then Some (List.rev !order) else None

let is_acyclic g = topological_sort g <> None

let floyd_warshall g ~weight =
  let n = Digraph.num_nodes g in
  let d = Array.make_matrix n n infinity in
  for v = 0 to n - 1 do
    d.(v).(v) <- 0.0
  done;
  List.iter
    (fun (e : Digraph.edge) ->
      let w = weight e in
      if w < d.(e.src).(e.dst) then d.(e.src).(e.dst) <- w)
    (Digraph.edges g);
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      if d.(i).(k) < infinity then
        for j = 0 to n - 1 do
          let via = d.(i).(k) +. d.(k).(j) in
          if via < d.(i).(j) then d.(i).(j) <- via
        done
    done
  done;
  d

let max_distances g ~weight =
  if not (is_acyclic g) then invalid_arg "Paths.max_distances: cyclic graph";
  let neg = floyd_warshall g ~weight:(fun e -> -.weight e) in
  Array.map (Array.map (fun w -> if w = infinity then 0.0 else -.w)) neg

let shortest_path g ~src ~dst =
  let n = Digraph.num_nodes g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Paths.shortest_path";
  let parent = Array.make n (-1) in
  let visited = Array.make n false in
  visited.(src) <- true;
  let q = Queue.create () in
  Queue.push src q;
  let found = ref (src = dst) in
  while (not !found) && not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun (e : Digraph.edge) ->
        if not visited.(e.dst) then begin
          visited.(e.dst) <- true;
          parent.(e.dst) <- u;
          if e.dst = dst then found := true;
          Queue.push e.dst q
        end)
      (Digraph.out_edges g u)
  done;
  if not !found then None
  else begin
    let rec build v acc = if v = src then src :: acc else build parent.(v) (v :: acc) in
    Some (build dst [])
  end
