type edge = { id : int; src : int; dst : int }

type t = {
  n : int;
  mutable edges_rev : edge list;
  mutable m : int;
  out_adj : edge list array;  (* newest first *)
  in_adj : edge list array;
  mutable edge_arr : edge array option;  (* cache, invalidated on add *)
}

let create n =
  if n < 0 then invalid_arg "Digraph.create";
  {
    n;
    edges_rev = [];
    m = 0;
    out_adj = Array.make (max n 1) [];
    in_adj = Array.make (max n 1) [];
    edge_arr = None;
  }

let add_edge g ~src ~dst =
  if src < 0 || src >= g.n || dst < 0 || dst >= g.n then
    invalid_arg "Digraph.add_edge: node out of range";
  let e = { id = g.m; src; dst } in
  g.edges_rev <- e :: g.edges_rev;
  g.m <- g.m + 1;
  g.out_adj.(src) <- e :: g.out_adj.(src);
  g.in_adj.(dst) <- e :: g.in_adj.(dst);
  g.edge_arr <- None;
  e.id

let num_nodes g = g.n
let num_edges g = g.m

let edge_array g =
  match g.edge_arr with
  | Some a -> a
  | None ->
    let a = Array.make (max g.m 1) { id = -1; src = -1; dst = -1 } in
    List.iter (fun e -> a.(e.id) <- e) g.edges_rev;
    g.edge_arr <- Some a;
    a

let edge g id =
  if id < 0 || id >= g.m then invalid_arg "Digraph.edge: unknown id";
  (edge_array g).(id)

let edges g = List.rev g.edges_rev

let out_edges g v =
  if v < 0 || v >= g.n then invalid_arg "Digraph.out_edges";
  List.rev g.out_adj.(v)

let in_edges g v =
  if v < 0 || v >= g.n then invalid_arg "Digraph.in_edges";
  List.rev g.in_adj.(v)

let out_degree g v = List.length (out_edges g v)
let in_degree g v = List.length (in_edges g v)

let nodes g = List.init g.n (fun i -> i)

let fold_edges f g acc = List.fold_left (fun acc e -> f e acc) acc (edges g)

let has_edge g ~src ~dst =
  src >= 0 && src < g.n
  && List.exists (fun e -> e.dst = dst) g.out_adj.(src)

let reverse g =
  let r = create g.n in
  List.iter (fun e -> ignore (add_edge r ~src:e.dst ~dst:e.src)) (edges g);
  r

let pp ppf g =
  Format.fprintf ppf "@[<v>digraph: %d nodes, %d edges@," g.n g.m;
  List.iter (fun e -> Format.fprintf ppf "  %d: %d -> %d@," e.id e.src e.dst)
    (edges g);
  Format.fprintf ppf "@]"
