lib/graphs/paths.mli: Digraph
