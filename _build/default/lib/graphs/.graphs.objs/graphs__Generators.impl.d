lib/graphs/generators.ml: Digraph
