lib/graphs/generators.mli: Digraph
