lib/graphs/paths.ml: Array Digraph List Queue
