type t = {
  n : int;
  lu : Dense_matrix.t;  (* L below the diagonal (unit), U on and above *)
  perm : int array;     (* row permutation: source row of factor row i *)
  sign : float;         (* determinant sign of the permutation *)
}

exception Singular of int

(* The elimination runs on the raw row-major storage: these loops dominate
   the solver's refactorization cost, so per-element accessor calls are
   deliberately avoided. *)
let factorize a =
  let n = Dense_matrix.rows a in
  if Dense_matrix.cols a <> n then invalid_arg "Lu.factorize: not square";
  let lu = Dense_matrix.copy a in
  let d = Dense_matrix.raw lu in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1.0 in
  for k = 0 to n - 1 do
    (* Partial pivoting: largest magnitude in column k, rows k.. *)
    let piv_row = ref k and piv_val = ref (Float.abs d.((k * n) + k)) in
    for i = k + 1 to n - 1 do
      let v = Float.abs d.((i * n) + k) in
      if v > !piv_val then begin
        piv_val := v;
        piv_row := i
      end
    done;
    if !piv_val < Tol.pivot then raise (Singular k);
    if !piv_row <> k then begin
      Dense_matrix.swap_rows lu k !piv_row;
      let t = perm.(k) in
      perm.(k) <- perm.(!piv_row);
      perm.(!piv_row) <- t;
      sign := -. !sign
    end;
    let bk = k * n in
    let ukk = d.(bk + k) in
    for i = k + 1 to n - 1 do
      let bi = i * n in
      let lik = d.(bi + k) /. ukk in
      d.(bi + k) <- lik;
      if lik <> 0.0 then
        for j = k + 1 to n - 1 do
          d.(bi + j) <- d.(bi + j) -. (lik *. d.(bk + j))
        done
    done
  done;
  { n; lu; perm; sign = !sign }

let dim f = f.n

let solve_into f b y =
  let n = f.n in
  let d = Dense_matrix.raw f.lu in
  (* Apply permutation, then forward substitution with unit L. *)
  for i = 0 to n - 1 do
    y.(i) <- b.(f.perm.(i))
  done;
  for i = 1 to n - 1 do
    let bi = i * n in
    let acc = ref y.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (d.(bi + j) *. y.(j))
    done;
    y.(i) <- !acc
  done;
  (* Backward substitution with U. *)
  for i = n - 1 downto 0 do
    let bi = i * n in
    let acc = ref y.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (d.(bi + j) *. y.(j))
    done;
    y.(i) <- !acc /. d.(bi + i)
  done

let solve f b =
  if Array.length b <> f.n then invalid_arg "Lu.solve: dim";
  let y = Array.make f.n 0.0 in
  solve_into f b y;
  y

let solve_transpose f b =
  if Array.length b <> f.n then invalid_arg "Lu.solve_transpose: dim";
  let n = f.n in
  let d = Dense_matrix.raw f.lu in
  (* Aᵀ x = b  ⇔  Uᵀ (Lᵀ Pᵀ x) = b: forward with Uᵀ, back with Lᵀ. *)
  let y = Array.copy b in
  for i = 0 to n - 1 do
    let acc = ref y.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (d.((j * n) + i) *. y.(j))
    done;
    y.(i) <- !acc /. d.((i * n) + i)
  done;
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (d.((j * n) + i) *. y.(j))
    done;
    y.(i) <- !acc
  done;
  let x = Array.make n 0.0 in
  for i = 0 to n - 1 do
    x.(f.perm.(i)) <- y.(i)
  done;
  x

let inverse f =
  let n = f.n in
  let inv = Dense_matrix.create ~rows:n ~cols:n in
  let raw = Dense_matrix.raw inv in
  let e = Array.make n 0.0 and x = Array.make n 0.0 in
  for j = 0 to n - 1 do
    e.(j) <- 1.0;
    solve_into f e x;
    e.(j) <- 0.0;
    for i = 0 to n - 1 do
      raw.((i * n) + j) <- x.(i)
    done
  done;
  inv

let determinant f =
  let acc = ref f.sign in
  for i = 0 to f.n - 1 do
    acc := !acc *. Dense_matrix.get f.lu i i
  done;
  !acc

let condition_estimate f =
  let mx = ref 0.0 and mn = ref infinity in
  for i = 0 to f.n - 1 do
    let d = Float.abs (Dense_matrix.get f.lu i i) in
    if d > !mx then mx := d;
    if d < !mn then mn := d
  done;
  if !mn = 0.0 then infinity else !mx /. !mn
