let eps = 1e-9
let feas = 1e-7
let pivot = 1e-8

let is_zero ?(tol = eps) x = Float.abs x <= tol

let approx_eq ?(tol = feas) a b =
  let scale = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= tol *. scale
