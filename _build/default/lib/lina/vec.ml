type t = float array

let create n = Array.make n 0.0
let copy = Array.copy
let fill v x = Array.fill v 0 (Array.length v) x
let dim = Array.length
let of_list = Array.of_list
let to_list = Array.to_list

let check_dim x y =
  if Array.length x <> Array.length y then
    invalid_arg "Vec: dimension mismatch"

let dot x y =
  check_dim x y;
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let nrm2 x = sqrt (dot x x)

let nrm_inf x =
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    let a = Float.abs x.(i) in
    if a > !acc then acc := a
  done;
  !acc

let axpy a x y =
  check_dim x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (a *. x.(i))
  done

let scale a x =
  for i = 0 to Array.length x - 1 do
    x.(i) <- a *. x.(i)
  done

let add x y =
  check_dim x y;
  Array.init (Array.length x) (fun i -> x.(i) +. y.(i))

let sub x y =
  check_dim x y;
  Array.init (Array.length x) (fun i -> x.(i) -. y.(i))

let max_abs_index x =
  let best = ref (-1) and best_v = ref neg_infinity in
  for i = 0 to Array.length x - 1 do
    let a = Float.abs x.(i) in
    if a > !best_v then begin
      best_v := a;
      best := i
    end
  done;
  !best

let approx_eq ?tol x y =
  Array.length x = Array.length y
  && begin
       let ok = ref true in
       for i = 0 to Array.length x - 1 do
         if not (Tol.approx_eq ?tol x.(i) y.(i)) then ok := false
       done;
       !ok
     end

let pp ppf v =
  Format.fprintf ppf "[|%a|]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       (fun ppf x -> Format.fprintf ppf "%g" x))
    (Array.to_list v)
