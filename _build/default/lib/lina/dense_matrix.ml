type t = { m : int; n : int; data : float array }

let create ~rows ~cols =
  if rows < 0 || cols < 0 then invalid_arg "Dense_matrix.create";
  { m = rows; n = cols; data = Array.make (rows * cols) 0.0 }

let identity n =
  let a = create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    a.data.((i * n) + i) <- 1.0
  done;
  a

let of_rows rows_arr =
  let m = Array.length rows_arr in
  let n = if m = 0 then 0 else Array.length rows_arr.(0) in
  let a = create ~rows:m ~cols:n in
  Array.iteri
    (fun i row ->
      if Array.length row <> n then invalid_arg "Dense_matrix.of_rows: ragged";
      Array.blit row 0 a.data (i * n) n)
    rows_arr;
  a

let to_rows a = Array.init a.m (fun i -> Array.sub a.data (i * a.n) a.n)
let copy a = { a with data = Array.copy a.data }
let rows a = a.m
let cols a = a.n
let get a i j = a.data.((i * a.n) + j)
let set a i j v = a.data.((i * a.n) + j) <- v
let row a i = Array.sub a.data (i * a.n) a.n
let col a j = Array.init a.m (fun i -> get a i j)

let mult_vec a x =
  if Array.length x <> a.n then invalid_arg "Dense_matrix.mult_vec";
  Array.init a.m (fun i ->
      let base = i * a.n in
      let acc = ref 0.0 in
      for j = 0 to a.n - 1 do
        acc := !acc +. (a.data.(base + j) *. x.(j))
      done;
      !acc)

let mult_trans_vec a y =
  if Array.length y <> a.m then invalid_arg "Dense_matrix.mult_trans_vec";
  let r = Array.make a.n 0.0 in
  for i = 0 to a.m - 1 do
    let yi = y.(i) in
    if yi <> 0.0 then begin
      let base = i * a.n in
      for j = 0 to a.n - 1 do
        r.(j) <- r.(j) +. (a.data.(base + j) *. yi)
      done
    end
  done;
  r

let mult a b =
  if a.n <> b.m then invalid_arg "Dense_matrix.mult";
  let c = create ~rows:a.m ~cols:b.n in
  for i = 0 to a.m - 1 do
    for k = 0 to a.n - 1 do
      let aik = a.data.((i * a.n) + k) in
      if aik <> 0.0 then begin
        let base_b = k * b.n and base_c = i * b.n in
        for j = 0 to b.n - 1 do
          c.data.(base_c + j) <- c.data.(base_c + j) +. (aik *. b.data.(base_b + j))
        done
      end
    done
  done;
  c

let swap_rows a i j =
  if i <> j then
    for k = 0 to a.n - 1 do
      let t = a.data.((i * a.n) + k) in
      a.data.((i * a.n) + k) <- a.data.((j * a.n) + k);
      a.data.((j * a.n) + k) <- t
    done

let scale_row a i s =
  let base = i * a.n in
  for k = 0 to a.n - 1 do
    a.data.(base + k) <- s *. a.data.(base + k)
  done

let row_axpy a ~src ~dst f =
  if f <> 0.0 then begin
    let bs = src * a.n and bd = dst * a.n in
    for k = 0 to a.n - 1 do
      a.data.(bd + k) <- a.data.(bd + k) +. (f *. a.data.(bs + k))
    done
  end

let raw a = a.data

let col_axpy a j f w =
  if f <> 0.0 then
    for i = 0 to a.m - 1 do
      w.(i) <- w.(i) +. (f *. a.data.((i * a.n) + j))
    done

let pivot_update binv d r =
  let m = binv.m in
  if Array.length d <> m then invalid_arg "Dense_matrix.pivot_update: dim";
  let piv = d.(r) in
  if Float.abs piv < Tol.pivot then
    invalid_arg "Dense_matrix.pivot_update: pivot too small";
  scale_row binv r (1.0 /. piv);
  for i = 0 to m - 1 do
    if i <> r && d.(i) <> 0.0 then row_axpy binv ~src:r ~dst:i (-.d.(i))
  done

let pp ppf a =
  Format.fprintf ppf "@[<v>";
  for i = 0 to a.m - 1 do
    Format.fprintf ppf "@[<h>";
    for j = 0 to a.n - 1 do
      Format.fprintf ppf "%8.3g " (get a i j)
    done;
    Format.fprintf ppf "@]@,"
  done;
  Format.fprintf ppf "@]"
