(** Compressed sparse column (CSC) matrices.

    The simplex solver stores the constraint matrix in this format: pricing
    and column extraction (FTRAN input) need fast access to whole columns.
    Matrices are immutable once built; assemble them with {!Builder}. *)

type t = private {
  rows : int;
  cols : int;
  col_ptr : int array;  (** length [cols + 1] *)
  row_idx : int array;  (** length [nnz], row index of each entry *)
  value : float array;  (** length [nnz] *)
}

module Builder : sig
  (** Mutable triplet accumulator.  Duplicate (row, col) entries are summed
      at {!finish} time. *)

  type b

  val create : rows:int -> cols:int -> b

  val add : b -> row:int -> col:int -> float -> unit
  (** Records a coefficient.  Near-zero values are kept (they may cancel
      or accumulate); cancellation is resolved at {!finish}.
      @raise Invalid_argument when out of bounds. *)

  val finish : b -> t
end

val rows : t -> int
val cols : t -> int
val nnz : t -> int

val of_dense : float array array -> t
(** [of_dense m] from a row-major dense matrix (rows of equal length). *)

val to_dense : t -> float array array

val get : t -> int -> int -> float
(** [get m i j]; binary search within column [j]. *)

val column : t -> int -> Sparse_vec.t
(** Column [j] as a sparse vector over row indices. *)

val iter_col : t -> int -> (int -> float -> unit) -> unit
(** [iter_col m j f] applies [f row value] over the stored entries of
    column [j] without allocating. *)

val mult_vec : t -> float array -> float array
(** [mult_vec m x] is the dense product [m * x]. *)

val mult_trans_vec : t -> float array -> float array
(** [mult_trans_vec m y] is the dense product [mᵀ * y]. *)

val col_dot : t -> int -> float array -> float
(** [col_dot m j y] is the inner product of column [j] with dense [y] —
    the reduced-cost kernel of the simplex pricing loop. *)

val transpose : t -> t

val pp : Format.formatter -> t -> unit
