(** Shared numerical tolerances for the linear-algebra and optimization
    layers.  All comparisons against zero in pivoting and feasibility tests
    go through these values so that the whole stack can be tuned in one
    place. *)

val eps : float
(** General-purpose absolute comparison tolerance, [1e-9]. *)

val feas : float
(** Feasibility tolerance for bound/row violations, [1e-7]. *)

val pivot : float
(** Minimal admissible magnitude of a simplex/LU pivot element, [1e-8]. *)

val is_zero : ?tol:float -> float -> bool
(** [is_zero x] is [true] when [abs_float x <= tol] (default {!eps}). *)

val approx_eq : ?tol:float -> float -> float -> bool
(** [approx_eq a b] compares with absolute tolerance [tol] (default
    {!feas}) plus a relative component scaled by the magnitudes. *)
