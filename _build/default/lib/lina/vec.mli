(** Dense float vectors.

    Thin helpers over [float array]; all operations are written to be
    allocation-conscious because the simplex inner loops call them on every
    iteration.  Functions suffixed [_into] write into a caller-provided
    destination. *)

type t = float array

val create : int -> t
(** [create n] is a zero vector of length [n]. *)

val copy : t -> t

val fill : t -> float -> unit

val dim : t -> int

val of_list : float list -> t

val to_list : t -> float list

val dot : t -> t -> float
(** Euclidean inner product.  @raise Invalid_argument on dimension
    mismatch. *)

val nrm2 : t -> float
(** Euclidean norm. *)

val nrm_inf : t -> float
(** Max-norm. *)

val axpy : float -> t -> t -> unit
(** [axpy a x y] performs [y <- a*x + y] in place. *)

val scale : float -> t -> unit
(** [scale a x] performs [x <- a*x] in place. *)

val add : t -> t -> t
(** Fresh element-wise sum. *)

val sub : t -> t -> t
(** Fresh element-wise difference. *)

val max_abs_index : t -> int
(** Index of the entry of largest magnitude; [-1] on the empty vector. *)

val approx_eq : ?tol:float -> t -> t -> bool
(** Element-wise {!Tol.approx_eq}; [false] on dimension mismatch. *)

val pp : Format.formatter -> t -> unit
