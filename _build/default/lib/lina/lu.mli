(** Dense LU factorization with partial pivoting.

    Used to (re)factorize the simplex basis periodically, bounding the
    numerical drift of the product-form inverse updates, and to solve
    general small dense systems in tests. *)

type t
(** An LU factorization [P·A = L·U] of a square matrix. *)

exception Singular of int
(** Raised (with the offending elimination step) when no pivot of
    magnitude at least {!Tol.pivot} exists. *)

val factorize : Dense_matrix.t -> t
(** @raise Singular when the matrix is (numerically) singular.
    @raise Invalid_argument on a non-square matrix. *)

val dim : t -> int

val solve : t -> float array -> float array
(** [solve lu b] returns [x] with [A x = b]. *)

val solve_transpose : t -> float array -> float array
(** [solve_transpose lu b] returns [x] with [Aᵀ x = b] — the BTRAN
    operation of the simplex method. *)

val inverse : t -> Dense_matrix.t
(** Explicit inverse, column by column. *)

val determinant : t -> float

val condition_estimate : t -> float
(** Cheap lower bound on the 1-norm condition number (ratio of extreme
    |U| diagonal entries); used to decide when to refactorize. *)
