(** Dense row-major matrices backed by a single flat float array.

    Used for the simplex basis inverse, where O(m²) row updates per pivot
    must touch contiguous memory. *)

type t

val create : rows:int -> cols:int -> t
(** Zero matrix. *)

val identity : int -> t

val of_rows : float array array -> t
(** @raise Invalid_argument on ragged input. *)

val to_rows : t -> float array array

val copy : t -> t

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val row : t -> int -> float array
(** Fresh copy of row [i]. *)

val col : t -> int -> float array
(** Fresh copy of column [j]. *)

val mult_vec : t -> float array -> float array

val mult_trans_vec : t -> float array -> float array

val mult : t -> t -> t

val swap_rows : t -> int -> int -> unit

val scale_row : t -> int -> float -> unit

val row_axpy : t -> src:int -> dst:int -> float -> unit
(** [row_axpy m ~src ~dst a] performs [row dst <- row dst + a * row src]. *)

val raw : t -> float array
(** The underlying row-major storage (entry [(i, j)] lives at
    [i * cols + j]).  Escape hatch for numerical kernels (LU, simplex)
    whose inner loops cannot afford per-element accessor calls; mutating
    it mutates the matrix. *)

val col_axpy : t -> int -> float -> float array -> unit
(** [col_axpy m j a w] performs [w <- w + a * column j] — the FTRAN kernel
    when the basis inverse is stored explicitly. *)

val pivot_update : t -> float array -> int -> unit
(** [pivot_update binv d r] applies the product-form simplex update to the
    explicit inverse: given the pivot column [d = B⁻¹ A_q] and the leaving
    row [r], transforms [binv <- E · binv] where [E] is the elementary
    matrix mapping [d] to the unit vector [e_r].
    @raise Invalid_argument when [abs d.(r)] is below {!Tol.pivot}. *)

val pp : Format.formatter -> t -> unit
