type t = {
  rows : int;
  cols : int;
  col_ptr : int array;
  row_idx : int array;
  value : float array;
}

module Builder = struct
  type b = {
    b_rows : int;
    b_cols : int;
    mutable entries : (int * int * float) list;  (* (col, row, value) *)
    mutable count : int;
  }

  let create ~rows ~cols =
    if rows < 0 || cols < 0 then invalid_arg "Csc.Builder.create";
    { b_rows = rows; b_cols = cols; entries = []; count = 0 }

  let add b ~row ~col v =
    if row < 0 || row >= b.b_rows || col < 0 || col >= b.b_cols then
      invalid_arg "Csc.Builder.add: index out of bounds";
    b.entries <- (col, row, v) :: b.entries;
    b.count <- b.count + 1

  let finish b =
    let sorted =
      List.sort
        (fun (c1, r1, _) (c2, r2, _) ->
          match compare c1 c2 with 0 -> compare r1 r2 | c -> c)
        b.entries
    in
    (* Merge duplicates and drop entries that cancel to zero. *)
    let rec merge acc = function
      | [] -> List.rev acc
      | (c, r, v) :: rest ->
        let rec take v = function
          | (c', r', w) :: tl when c' = c && r' = r -> take (v +. w) tl
          | tl -> (v, tl)
        in
        let v, rest = take v rest in
        if Tol.is_zero v then merge acc rest else merge ((c, r, v) :: acc) rest
    in
    let merged = merge [] sorted in
    let nnz = List.length merged in
    let col_ptr = Array.make (b.b_cols + 1) 0 in
    let row_idx = Array.make nnz 0 in
    let value = Array.make nnz 0.0 in
    List.iteri
      (fun k (c, r, v) ->
        row_idx.(k) <- r;
        value.(k) <- v;
        col_ptr.(c + 1) <- col_ptr.(c + 1) + 1)
      merged;
    for c = 1 to b.b_cols do
      col_ptr.(c) <- col_ptr.(c) + col_ptr.(c - 1)
    done;
    { rows = b.b_rows; cols = b.b_cols; col_ptr; row_idx; value }
end

let rows m = m.rows
let cols m = m.cols
let nnz m = Array.length m.value

let of_dense dense =
  let r = Array.length dense in
  let c = if r = 0 then 0 else Array.length dense.(0) in
  let b = Builder.create ~rows:r ~cols:c in
  Array.iteri
    (fun i row ->
      if Array.length row <> c then invalid_arg "Csc.of_dense: ragged matrix";
      Array.iteri
        (fun j v -> if not (Tol.is_zero v) then Builder.add b ~row:i ~col:j v)
        row)
    dense;
  Builder.finish b

let to_dense m =
  let dense = Array.make_matrix m.rows m.cols 0.0 in
  for j = 0 to m.cols - 1 do
    for k = m.col_ptr.(j) to m.col_ptr.(j + 1) - 1 do
      dense.(m.row_idx.(k)).(j) <- m.value.(k)
    done
  done;
  dense

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Csc.get";
  let lo = ref m.col_ptr.(j) and hi = ref (m.col_ptr.(j + 1) - 1) in
  let found = ref 0.0 in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let r = m.row_idx.(mid) in
    if r = i then begin
      found := m.value.(mid);
      lo := !hi + 1
    end
    else if r < i then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let iter_col m j f =
  if j < 0 || j >= m.cols then invalid_arg "Csc.iter_col";
  for k = m.col_ptr.(j) to m.col_ptr.(j + 1) - 1 do
    f m.row_idx.(k) m.value.(k)
  done

let column m j =
  let acc = ref [] in
  iter_col m j (fun i v -> acc := (i, v) :: !acc);
  Sparse_vec.of_assoc !acc

let mult_vec m x =
  if Array.length x <> m.cols then invalid_arg "Csc.mult_vec";
  let y = Array.make m.rows 0.0 in
  for j = 0 to m.cols - 1 do
    let xj = x.(j) in
    if xj <> 0.0 then
      for k = m.col_ptr.(j) to m.col_ptr.(j + 1) - 1 do
        let i = m.row_idx.(k) in
        y.(i) <- y.(i) +. (m.value.(k) *. xj)
      done
  done;
  y

let col_dot m j y =
  let acc = ref 0.0 in
  for k = m.col_ptr.(j) to m.col_ptr.(j + 1) - 1 do
    acc := !acc +. (m.value.(k) *. y.(m.row_idx.(k)))
  done;
  !acc

let mult_trans_vec m y =
  if Array.length y <> m.rows then invalid_arg "Csc.mult_trans_vec";
  Array.init m.cols (fun j -> col_dot m j y)

let transpose m =
  let b = Builder.create ~rows:m.cols ~cols:m.rows in
  for j = 0 to m.cols - 1 do
    iter_col m j (fun i v -> Builder.add b ~row:j ~col:i v)
  done;
  Builder.finish b

let pp ppf m =
  Format.fprintf ppf "@[<v>csc %dx%d nnz=%d" m.rows m.cols (nnz m);
  for j = 0 to m.cols - 1 do
    iter_col m j (fun i v -> Format.fprintf ppf "@ (%d,%d)=%g" i j v)
  done;
  Format.fprintf ppf "@]"
