lib/lina/sparse_vec.mli: Format
