lib/lina/vec.ml: Array Float Format Tol
