lib/lina/sparse_vec.ml: Array Format List Tol
