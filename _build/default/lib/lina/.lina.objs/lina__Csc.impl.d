lib/lina/csc.ml: Array Format List Sparse_vec Tol
