lib/lina/tol.mli:
