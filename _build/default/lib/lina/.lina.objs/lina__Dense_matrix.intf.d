lib/lina/dense_matrix.mli: Format
