lib/lina/lu.mli: Dense_matrix
