lib/lina/tol.ml: Float
