lib/lina/csc.mli: Format Sparse_vec
