lib/lina/lu.ml: Array Dense_matrix Float Tol
