lib/lina/dense_matrix.ml: Array Float Format Tol
