lib/lina/vec.mli: Format
