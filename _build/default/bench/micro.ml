(* Bechamel micro-benchmarks of the solver's computational kernels. *)

open Bechamel
open Toolkit

let lu_input n =
  let rng = Workload.Rng.create 5L in
  Lina.Dense_matrix.of_rows
    (Array.init n (fun _ ->
         Array.init n (fun _ -> Workload.Rng.float_range rng (-2.0) 2.0)))

let small_lp () =
  (* A fixed 30-var, 20-row random LP. *)
  let rng = Workload.Rng.create 11L in
  let m = Lp.Model.create () in
  let vars =
    Array.init 30 (fun i ->
        Lp.Model.add_var m ~ub:(Workload.Rng.float_range rng 1.0 4.0)
          (Printf.sprintf "x%d" i))
  in
  for _ = 1 to 20 do
    Lp.Model.add_le m
      (Lp.Expr.of_terms
         (Array.to_list
            (Array.map
               (fun (x : Lp.Model.var) ->
                 ((x :> int), Workload.Rng.float_range rng 0.0 2.0))
               vars)))
      (Workload.Rng.float_range rng 2.0 8.0)
  done;
  Lp.Model.set_objective m Lp.Model.Maximize
    (Lp.Expr.sum
       (Array.to_list
          (Array.map (fun (x : Lp.Model.var) -> Lp.Expr.var (x :> int)) vars)));
  Lp.Std_form.of_model m

let bench_instance () =
  let rng = Workload.Rng.create 3L in
  Tvnep.Scenario.generate rng
    { Tvnep.Scenario.scaled with num_requests = 4; flexibility = 1.0 }

let tests () =
  let lu60 = lu_input 60 in
  let lp = small_lp () in
  let inst = bench_instance () in
  let grid = Graphs.Generators.grid ~rows:4 ~cols:5 in
  [
    Test.make ~name:"lu-factorize-60x60"
      (Staged.stage (fun () -> ignore (Lina.Lu.factorize lu60)));
    Test.make ~name:"simplex-30v-20r"
      (Staged.stage (fun () -> ignore (Lp.Simplex.solve lp)));
    Test.make ~name:"floyd-warshall-grid-4x5"
      (Staged.stage (fun () ->
           ignore (Graphs.Paths.floyd_warshall grid ~weight:(fun _ -> 1.0))));
    Test.make ~name:"csigma-build-k4"
      (Staged.stage (fun () -> ignore (Tvnep.Csigma_model.build inst)));
    Test.make ~name:"depgraph-ranges-k4"
      (Staged.stage (fun () ->
           ignore (Tvnep.Depgraph.csigma_event_ranges inst)));
    Test.make ~name:"greedy-k4"
      (Staged.stage (fun () -> ignore (Tvnep.Greedy.solve inst)));
  ]

let run () =
  Printf.printf "\n== Microbenchmarks (Bechamel, monotonic clock) ==\n";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let grouped = Test.make_grouped ~name:"micro" ~fmt:"%s %s" (tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table = Statsutil.Table.create ~headers:[ "kernel"; "time per run" ] in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> e
        | _ -> nan
      in
      rows := (name, estimate) :: !rows)
    results;
  List.iter
    (fun (name, ns) ->
      let pretty =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Statsutil.Table.add_row table [ name; pretty ])
    (List.sort compare !rows);
  Statsutil.Table.print table
