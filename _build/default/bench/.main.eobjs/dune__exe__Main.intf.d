bench/main.mli:
