bench/micro.ml: Analyze Array Bechamel Benchmark Float Graphs Hashtbl Instance Lina List Lp Measure Printf Staged Statsutil Test Time Toolkit Tvnep Workload
