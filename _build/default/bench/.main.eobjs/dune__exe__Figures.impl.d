bench/figures.ml: Array Float Fun Int64 List Mip Option Printf Statsutil Tvnep Workload
