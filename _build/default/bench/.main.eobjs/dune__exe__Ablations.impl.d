bench/ablations.ml: Int64 List Lp Mip Printf Statsutil Tvnep Workload
