bench/main.ml: Ablations Arg Cmd Cmdliner Figures Int64 List Micro Printf Term Tvnep
