test/test_models.ml: Alcotest Array Float Graphs Int64 List Lp Mip Printf QCheck2 QCheck_alcotest String Tvnep Workload
