test/test_lina.ml: Alcotest Array Int64 Lina QCheck2 QCheck_alcotest Workload
