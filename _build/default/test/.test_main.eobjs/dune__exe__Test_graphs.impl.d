test/test_graphs.ml: Alcotest Array Graphs Int64 List QCheck2 QCheck_alcotest Workload
