test/test_presolve.ml: Alcotest Array Float Int64 List Lp Mip Printf QCheck2 QCheck_alcotest Workload
