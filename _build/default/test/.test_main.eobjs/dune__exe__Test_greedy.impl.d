test/test_greedy.ml: Alcotest Array Float Graphs Int64 Mip QCheck2 QCheck_alcotest Tvnep Workload
