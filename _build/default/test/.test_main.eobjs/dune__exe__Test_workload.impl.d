test/test_workload.ml: Alcotest Array Float List Statsutil String Workload
