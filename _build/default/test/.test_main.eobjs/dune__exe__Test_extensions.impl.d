test/test_extensions.ml: Alcotest Array Filename Float Fun Graphs List Lp Mip Printf String Sys Tvnep Workload
