test/test_mip.ml: Alcotest Array Float Format Int64 List Lp Mip Printf QCheck2 QCheck_alcotest Workload
