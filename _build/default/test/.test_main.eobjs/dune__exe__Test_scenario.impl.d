test/test_scenario.ml: Alcotest Array Filename Fun Graphs Printf Sys Tvnep Workload
