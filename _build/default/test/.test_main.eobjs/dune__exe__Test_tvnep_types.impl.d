test/test_tvnep_types.ml: Alcotest Array Graphs String Tvnep
