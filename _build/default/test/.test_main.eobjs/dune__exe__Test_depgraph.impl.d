test/test_depgraph.ml: Alcotest Array Float Graphs Int64 List Mip Printf QCheck2 QCheck_alcotest Tvnep Workload
