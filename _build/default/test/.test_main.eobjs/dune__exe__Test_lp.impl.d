test/test_lp.ml: Alcotest Array Float Format Int64 List Lp Printf QCheck2 QCheck_alcotest Workload
