(* Problem-type construction, validation and solution accounting. *)

let feq = Alcotest.(check (float 1e-9))

(* Small shared fixtures. *)
let line_substrate ?(node_cap = 2.0) ?(link_cap = 1.0) n =
  let g = Graphs.Digraph.create n in
  for i = 0 to n - 2 do
    ignore (Graphs.Digraph.add_edge g ~src:i ~dst:(i + 1));
    ignore (Graphs.Digraph.add_edge g ~src:(i + 1) ~dst:i)
  done;
  Tvnep.Substrate.uniform g ~node_cap ~link_cap

let simple_request ?(name = "r") ?(demand = 1.0) ?(link_demand = 0.5)
    ?(duration = 1.0) ?(start_min = 0.0) ?(end_max = 2.0) () =
  let g = Graphs.Digraph.create 2 in
  ignore (Graphs.Digraph.add_edge g ~src:0 ~dst:1);
  Tvnep.Request.make ~name ~graph:g ~node_demand:[| demand; demand |]
    ~link_demand:[| link_demand |] ~duration ~start_min ~end_max

let substrate_tests =
  [
    Alcotest.test_case "uniform capacities" `Quick (fun () ->
        let s = line_substrate 3 in
        Alcotest.(check int) "nodes" 3 (Tvnep.Substrate.num_nodes s);
        Alcotest.(check int) "links" 4 (Tvnep.Substrate.num_links s);
        feq "node cap" 2.0 (Tvnep.Substrate.node_cap s 1);
        feq "total" 6.0 (Tvnep.Substrate.total_node_capacity s));
    Alcotest.test_case "arity mismatch rejected" `Quick (fun () ->
        let g = Graphs.Digraph.create 2 in
        Alcotest.check_raises "raise"
          (Invalid_argument "Substrate.make: node capacity arity") (fun () ->
            ignore (Tvnep.Substrate.make g ~node_cap:[| 1.0 |] ~link_cap:[||])));
    Alcotest.test_case "negative capacity rejected" `Quick (fun () ->
        let g = Graphs.Digraph.create 1 in
        Alcotest.check_raises "raise"
          (Invalid_argument "Substrate.make: negative capacity") (fun () ->
            ignore (Tvnep.Substrate.make g ~node_cap:[| -1.0 |] ~link_cap:[||])));
  ]

let request_tests =
  [
    Alcotest.test_case "flexibility arithmetic" `Quick (fun () ->
        let r = simple_request ~duration:1.5 ~start_min:1.0 ~end_max:4.0 () in
        feq "flex" 1.5 (Tvnep.Request.flexibility r);
        feq "latest start" 2.5 (Tvnep.Request.latest_start r);
        feq "earliest end" 2.5 (Tvnep.Request.earliest_end r);
        let widened = Tvnep.Request.with_flexibility r 3.0 in
        feq "widened" 3.0 (Tvnep.Request.flexibility widened);
        feq "start preserved" 1.0 widened.Tvnep.Request.start_min);
    Alcotest.test_case "window shorter than duration rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (simple_request ~duration:3.0 ~end_max:2.0 ());
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "self-loop rejected" `Quick (fun () ->
        let g = Graphs.Digraph.create 1 in
        ignore (Graphs.Digraph.add_edge g ~src:0 ~dst:0);
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Tvnep.Request.make ~name:"bad" ~graph:g ~node_demand:[| 1.0 |]
                  ~link_demand:[| 1.0 |] ~duration:1.0 ~start_min:0.0
                  ~end_max:2.0);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "total node demand" `Quick (fun () ->
        let r = simple_request ~demand:1.25 () in
        feq "sum" 2.5 (Tvnep.Request.total_node_demand r));
  ]

let instance_tests =
  [
    Alcotest.test_case "horizon must cover windows" `Quick (fun () ->
        let s = line_substrate 2 in
        let r = simple_request ~end_max:5.0 () in
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Tvnep.Instance.make ~substrate:s ~requests:[| r |] ~horizon:4.0 ());
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "mapping shape validated" `Quick (fun () ->
        let s = line_substrate 2 in
        let r = simple_request () in
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Tvnep.Instance.make ~node_mappings:[| [| 0 |] |] ~substrate:s
                  ~requests:[| r |] ~horizon:5.0 ());
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "with_flexibility widens windows and horizon" `Quick
      (fun () ->
        let s = line_substrate 2 in
        let r = simple_request ~duration:1.0 ~start_min:0.0 ~end_max:1.0 () in
        let inst =
          Tvnep.Instance.make ~substrate:s ~requests:[| r |] ~horizon:1.0 ()
        in
        let wider = Tvnep.Instance.with_flexibility inst 2.0 in
        feq "new window" 3.0 (Tvnep.Instance.request wider 0).Tvnep.Request.end_max;
        feq "new horizon" 3.0 wider.Tvnep.Instance.horizon);
    Alcotest.test_case "total virtual links" `Quick (fun () ->
        let s = line_substrate 2 in
        let r1 = simple_request ~name:"a" () and r2 = simple_request ~name:"b" () in
        let inst =
          Tvnep.Instance.make ~substrate:s ~requests:[| r1; r2 |] ~horizon:5.0 ()
        in
        Alcotest.(check int) "links" 2 (Tvnep.Instance.total_virtual_links inst));
  ]

(* A hand-built feasible solution for validator tests. *)
let two_request_fixture () =
  let s = line_substrate ~node_cap:2.0 ~link_cap:1.0 3 in
  let r1 = simple_request ~name:"r1" ~duration:1.0 ~start_min:0.0 ~end_max:3.0 () in
  let r2 = simple_request ~name:"r2" ~duration:1.0 ~start_min:0.0 ~end_max:3.0 () in
  let inst =
    Tvnep.Instance.make
      ~node_mappings:[| [| 0; 1 |]; [| 0; 1 |] |]
      ~substrate:s ~requests:[| r1; r2 |] ~horizon:3.0 ()
  in
  (* Both requests route their virtual link over substrate edge 0 (0->1),
     demand 0.5 each: simultaneous execution saturates the link exactly. *)
  let assignment t_start =
    {
      Tvnep.Solution.accepted = true;
      node_map = [| 0; 1 |];
      link_flows = [| [ (0, 1.0) ] |];
      t_start;
      t_end = t_start +. 1.0;
    }
  in
  (inst, assignment)

let validator_tests =
  [
    Alcotest.test_case "accepts a feasible overlap" `Quick (fun () ->
        let inst, assignment = two_request_fixture () in
        let sol =
          { Tvnep.Solution.assignments = [| assignment 0.0; assignment 0.5 |];
            objective = 0.0 }
        in
        (match Tvnep.Validator.check inst sol with
        | Ok () -> ()
        | Error es -> Alcotest.fail (String.concat "; " es)));
    Alcotest.test_case "rejects window violations" `Quick (fun () ->
        let inst, assignment = two_request_fixture () in
        let late = { (assignment 2.5) with Tvnep.Solution.t_end = 3.5 } in
        let sol =
          { Tvnep.Solution.assignments = [| late; assignment 0.0 |];
            objective = 0.0 }
        in
        Alcotest.(check bool) "infeasible" false
          (Tvnep.Validator.is_feasible inst sol));
    Alcotest.test_case "rejects wrong duration" `Quick (fun () ->
        let inst, assignment = two_request_fixture () in
        let short = { (assignment 0.0) with Tvnep.Solution.t_end = 0.5 } in
        let sol =
          { Tvnep.Solution.assignments = [| short; assignment 2.0 |];
            objective = 0.0 }
        in
        Alcotest.(check bool) "infeasible" false
          (Tvnep.Validator.is_feasible inst sol));
    Alcotest.test_case "rejects broken flow" `Quick (fun () ->
        let inst, assignment = two_request_fixture () in
        let broken =
          { (assignment 0.0) with Tvnep.Solution.link_flows = [| [ (0, 0.5) ] |] }
        in
        let sol =
          { Tvnep.Solution.assignments = [| broken; assignment 2.0 |];
            objective = 0.0 }
        in
        Alcotest.(check bool) "infeasible" false
          (Tvnep.Validator.is_feasible inst sol));
    Alcotest.test_case "rejects node overload" `Quick (fun () ->
        (* Demand 1.5 each on the same host, capacity 2.0: overlap fails. *)
        let s = line_substrate ~node_cap:2.0 ~link_cap:2.0 3 in
        let mk name = simple_request ~name ~demand:1.5 ~link_demand:0.1 () in
        let inst =
          Tvnep.Instance.make
            ~node_mappings:[| [| 0; 1 |]; [| 0; 1 |] |]
            ~substrate:s
            ~requests:[| mk "a"; mk "b" |]
            ~horizon:3.0 ()
        in
        let a t =
          {
            Tvnep.Solution.accepted = true;
            node_map = [| 0; 1 |];
            link_flows = [| [ (0, 1.0) ] |];
            t_start = t;
            t_end = t +. 1.0;
          }
        in
        let overlapping =
          { Tvnep.Solution.assignments = [| a 0.0; a 0.5 |]; objective = 0.0 }
        in
        Alcotest.(check bool) "overlap infeasible" false
          (Tvnep.Validator.is_feasible inst overlapping);
        let sequential =
          { Tvnep.Solution.assignments = [| a 0.0; a 1.0 |]; objective = 0.0 }
        in
        Alcotest.(check bool) "sequential feasible" true
          (Tvnep.Validator.is_feasible inst sequential));
    Alcotest.test_case "rejects deviation from fixed mapping" `Quick (fun () ->
        let inst, assignment = two_request_fixture () in
        let moved =
          { (assignment 0.0) with
            Tvnep.Solution.node_map = [| 1; 2 |];
            link_flows = [| [ (2, 1.0) ] |] }
        in
        let sol =
          { Tvnep.Solution.assignments = [| moved; assignment 2.0 |];
            objective = 0.0 }
        in
        Alcotest.(check bool) "infeasible" false
          (Tvnep.Validator.is_feasible inst sol));
    Alcotest.test_case "link and node load accounting" `Quick (fun () ->
        let inst, assignment = two_request_fixture () in
        let sol =
          { Tvnep.Solution.assignments = [| assignment 0.0; assignment 0.5 |];
            objective = 0.0 }
        in
        let lload = Tvnep.Solution.link_load inst sol ~time:0.75 in
        feq "both active" 1.0 lload.(0);
        let nload = Tvnep.Solution.node_load inst sol ~time:0.75 in
        feq "node 0" 2.0 nload.(0);
        let lload2 = Tvnep.Solution.link_load inst sol ~time:1.25 in
        feq "one active" 0.5 lload2.(0));
    Alcotest.test_case "access control value" `Quick (fun () ->
        let inst, assignment = two_request_fixture () in
        let sol =
          { Tvnep.Solution.assignments =
              [| assignment 0.0;
                 Tvnep.Solution.rejected (Tvnep.Instance.request inst 1) |];
            objective = 0.0 }
        in
        (* d=1, node demands 1+1 -> revenue 2 for the accepted request *)
        feq "revenue" 2.0 (Tvnep.Solution.access_control_value inst sol);
        Alcotest.(check int) "accepted" 1 (Tvnep.Solution.num_accepted sol);
        Alcotest.(check (list int)) "indices" [ 0 ]
          (Tvnep.Solution.accepted_indices sol));
  ]

let suite =
  [
    ("tvnep.substrate", substrate_tests);
    ("tvnep.request", request_tests);
    ("tvnep.instance", instance_tests);
    ("tvnep.validator", validator_tests);
  ]
