(* Graph library tests: generators, traversals, Floyd-Warshall. *)

let digraph_tests =
  [
    Alcotest.test_case "edges and adjacency" `Quick (fun () ->
        let g = Graphs.Digraph.create 3 in
        let e0 = Graphs.Digraph.add_edge g ~src:0 ~dst:1 in
        let e1 = Graphs.Digraph.add_edge g ~src:1 ~dst:2 in
        let e2 = Graphs.Digraph.add_edge g ~src:0 ~dst:2 in
        Alcotest.(check (list int)) "ids" [ 0; 1; 2 ] [ e0; e1; e2 ];
        Alcotest.(check int) "out deg 0" 2 (Graphs.Digraph.out_degree g 0);
        Alcotest.(check int) "in deg 2" 2 (Graphs.Digraph.in_degree g 2);
        Alcotest.(check bool) "has_edge" true
          (Graphs.Digraph.has_edge g ~src:0 ~dst:2);
        Alcotest.(check bool) "no reverse" false
          (Graphs.Digraph.has_edge g ~src:2 ~dst:0));
    Alcotest.test_case "reverse preserves ids" `Quick (fun () ->
        let g = Graphs.Digraph.create 2 in
        let e = Graphs.Digraph.add_edge g ~src:0 ~dst:1 in
        let r = Graphs.Digraph.reverse g in
        let edge = Graphs.Digraph.edge r e in
        Alcotest.(check int) "src" 1 edge.Graphs.Digraph.src;
        Alcotest.(check int) "dst" 0 edge.Graphs.Digraph.dst);
    Alcotest.test_case "bad endpoints rejected" `Quick (fun () ->
        let g = Graphs.Digraph.create 1 in
        Alcotest.check_raises "raise"
          (Invalid_argument "Digraph.add_edge: node out of range") (fun () ->
            ignore (Graphs.Digraph.add_edge g ~src:0 ~dst:1)));
  ]

let generator_tests =
  [
    Alcotest.test_case "paper grid dimensions" `Quick (fun () ->
        (* The paper's substrate: 4x5 grid, 20 nodes, 62 directed links. *)
        let g = Graphs.Generators.grid ~rows:4 ~cols:5 in
        Alcotest.(check int) "nodes" 20 (Graphs.Digraph.num_nodes g);
        Alcotest.(check int) "directed links" 62 (Graphs.Digraph.num_edges g));
    Alcotest.test_case "grid connectivity" `Quick (fun () ->
        let g = Graphs.Generators.grid ~rows:3 ~cols:3 in
        let d = Graphs.Paths.bfs_distances g 0 in
        Alcotest.(check int) "corner to corner" 4 d.(8);
        Alcotest.(check bool) "all reachable" true
          (Array.for_all (fun x -> x >= 0) d));
    Alcotest.test_case "star orientations" `Quick (fun () ->
        let t = Graphs.Generators.star ~leaves:4 ~orientation:Graphs.Generators.To_center in
        Alcotest.(check int) "in-degree center" 4 (Graphs.Digraph.in_degree t 0);
        Alcotest.(check int) "out-degree center" 0 (Graphs.Digraph.out_degree t 0);
        let f = Graphs.Generators.star ~leaves:4 ~orientation:Graphs.Generators.From_center in
        Alcotest.(check int) "out-degree center" 4 (Graphs.Digraph.out_degree f 0));
    Alcotest.test_case "path and ring" `Quick (fun () ->
        let p = Graphs.Generators.path 5 in
        Alcotest.(check int) "path edges" 4 (Graphs.Digraph.num_edges p);
        Alcotest.(check bool) "path acyclic" true (Graphs.Paths.is_acyclic p);
        let r = Graphs.Generators.ring 5 in
        Alcotest.(check int) "ring edges" 5 (Graphs.Digraph.num_edges r);
        Alcotest.(check bool) "ring cyclic" false (Graphs.Paths.is_acyclic r));
    Alcotest.test_case "complete bidirected" `Quick (fun () ->
        let g = Graphs.Generators.complete_bidirected 4 in
        Alcotest.(check int) "edges" 12 (Graphs.Digraph.num_edges g));
    Alcotest.test_case "gnp extremes" `Quick (fun () ->
        let rng = Workload.Rng.create 1L in
        let uniform () = Workload.Rng.float rng in
        let empty = Graphs.Generators.random_gnp ~n:5 ~p:0.0 ~uniform in
        Alcotest.(check int) "p=0" 0 (Graphs.Digraph.num_edges empty);
        let full = Graphs.Generators.random_gnp ~n:5 ~p:1.0 ~uniform in
        Alcotest.(check int) "p=1" 20 (Graphs.Digraph.num_edges full));
  ]

let paths_tests =
  [
    Alcotest.test_case "topological sort on a DAG" `Quick (fun () ->
        let g = Graphs.Digraph.create 4 in
        ignore (Graphs.Digraph.add_edge g ~src:0 ~dst:1);
        ignore (Graphs.Digraph.add_edge g ~src:0 ~dst:2);
        ignore (Graphs.Digraph.add_edge g ~src:1 ~dst:3);
        ignore (Graphs.Digraph.add_edge g ~src:2 ~dst:3);
        match Graphs.Paths.topological_sort g with
        | None -> Alcotest.fail "DAG expected"
        | Some order ->
          let posn = Array.make 4 0 in
          List.iteri (fun i x -> posn.(x) <- i) order;
          Alcotest.(check bool) "edges forward" true
            (List.for_all
               (fun (e : Graphs.Digraph.edge) -> posn.(e.src) < posn.(e.dst))
               (Graphs.Digraph.edges g)));
    Alcotest.test_case "floyd-warshall shortest" `Quick (fun () ->
        let g = Graphs.Generators.ring 4 in
        let d = Graphs.Paths.floyd_warshall g ~weight:(fun _ -> 1.0) in
        Alcotest.(check (float 1e-9)) "around ring" 3.0 d.(0).(3);
        Alcotest.(check (float 1e-9)) "self" 0.0 d.(2).(2));
    Alcotest.test_case "max_distances on a DAG" `Quick (fun () ->
        (* diamond 0->1->3, 0->2->3 with weights: longest 0->3 = 2 *)
        let g = Graphs.Digraph.create 4 in
        ignore (Graphs.Digraph.add_edge g ~src:0 ~dst:1);
        ignore (Graphs.Digraph.add_edge g ~src:0 ~dst:3);
        ignore (Graphs.Digraph.add_edge g ~src:1 ~dst:3);
        let d = Graphs.Paths.max_distances g ~weight:(fun _ -> 1.0) in
        Alcotest.(check (float 1e-9)) "longest 0->3" 2.0 d.(0).(3);
        Alcotest.(check (float 1e-9)) "unreachable is 0" 0.0 d.(3).(0));
    Alcotest.test_case "max_distances rejects cycles" `Quick (fun () ->
        let g = Graphs.Generators.ring 3 in
        Alcotest.check_raises "raise"
          (Invalid_argument "Paths.max_distances: cyclic graph") (fun () ->
            ignore (Graphs.Paths.max_distances g ~weight:(fun _ -> 1.0))));
    Alcotest.test_case "shortest_path endpoints" `Quick (fun () ->
        let g = Graphs.Generators.grid ~rows:2 ~cols:3 in
        match Graphs.Paths.shortest_path g ~src:0 ~dst:5 with
        | None -> Alcotest.fail "connected"
        | Some path ->
          Alcotest.(check int) "starts" 0 (List.hd path);
          Alcotest.(check int) "ends" 5 (List.nth path (List.length path - 1));
          Alcotest.(check int) "hops" 4 (List.length path));
    Alcotest.test_case "reachability closure" `Quick (fun () ->
        let g = Graphs.Generators.path 3 in
        let r = Graphs.Paths.reachability g in
        Alcotest.(check bool) "0->2" true r.(0).(2);
        Alcotest.(check bool) "2->0" false r.(2).(0);
        Alcotest.(check bool) "diagonal" true r.(1).(1));
  ]

let path_properties =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"FW(unit weights) equals BFS distances"
         ~count:30
         QCheck2.Gen.(int_bound 100_000)
         (fun seed ->
           let rng = Workload.Rng.create (Int64.of_int (seed + 9)) in
           let n = 2 + Workload.Rng.int rng 8 in
           let g =
             Graphs.Generators.random_gnp ~n ~p:0.3 ~uniform:(fun () ->
                 Workload.Rng.float rng)
           in
           let fw = Graphs.Paths.floyd_warshall g ~weight:(fun _ -> 1.0) in
           let ok = ref true in
           for s = 0 to n - 1 do
             let bfs = Graphs.Paths.bfs_distances g s in
             for t = 0 to n - 1 do
               let expect = if bfs.(t) < 0 then infinity else float_of_int bfs.(t) in
               if fw.(s).(t) <> expect then ok := false
             done
           done;
           !ok));
  ]

let suite =
  [
    ("graphs.digraph", digraph_tests);
    ("graphs.generators", generator_tests);
    ("graphs.paths", paths_tests @ path_properties);
  ]
