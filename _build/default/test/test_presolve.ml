(* Model presolve: reductions, infeasibility proofs, and equivalence of
   the reduced model's optimum with the original's. *)

let feq = Alcotest.(check (float 1e-6))

let v (x : Lp.Model.var) = Lp.Expr.var (x :> int)

let unit_tests =
  [
    Alcotest.test_case "fixed variables are substituted" `Quick (fun () ->
        let m = Lp.Model.create () in
        let x = Lp.Model.add_var m ~lb:2.0 ~ub:2.0 "x" in
        let y = Lp.Model.add_var m ~ub:10.0 "y" in
        Lp.Model.add_le m (Lp.Expr.add (v x) (v y)) 5.0;  (* => y <= 3 *)
        Lp.Model.set_objective m Lp.Model.Maximize (Lp.Expr.add (v x) (v y));
        match Lp.Presolve.presolve m with
        | Lp.Presolve.Infeasible -> Alcotest.fail "feasible"
        | Lp.Presolve.Reduced p ->
          Alcotest.(check int) "one var fixed" 1 p.Lp.Presolve.vars_fixed;
          Alcotest.(check int) "reduced arity" 1
            (Lp.Model.num_vars p.Lp.Presolve.reduced);
          let r = Lp.Simplex.solve_model p.Lp.Presolve.reduced in
          feq "objective preserved" 5.0 r.Lp.Simplex.objective;
          let full = Lp.Presolve.restore p r.Lp.Simplex.x in
          feq "x restored" 2.0 full.(0);
          feq "y restored" 3.0 full.(1));
    Alcotest.test_case "singleton rows become bounds" `Quick (fun () ->
        let m = Lp.Model.create () in
        let x = Lp.Model.add_var m ~ub:10.0 "x" in
        let y = Lp.Model.add_var m ~ub:10.0 "y" in
        Lp.Model.add_le m (Lp.Expr.scale 2.0 (v x)) 6.0;  (* x <= 3 *)
        Lp.Model.add_ge m (v y) 1.0;                      (* y >= 1 *)
        Lp.Model.add_le m (Lp.Expr.add (v x) (v y)) 100.0;
        Lp.Model.set_objective m Lp.Model.Maximize (v x);
        match Lp.Presolve.presolve m with
        | Lp.Presolve.Infeasible -> Alcotest.fail "feasible"
        | Lp.Presolve.Reduced p ->
          Alcotest.(check int) "two rows dropped" 2 p.Lp.Presolve.rows_dropped;
          Alcotest.(check int) "one row kept" 1 p.Lp.Presolve.rows_kept;
          feq "x ub" 3.0 (Lp.Model.var_ub p.Lp.Presolve.reduced
                            (Lp.Model.var_of_id p.Lp.Presolve.reduced 0)));
    Alcotest.test_case "cascading fixings" `Quick (fun () ->
        (* x = 4 by a singleton equality; then y via the second row. *)
        let m = Lp.Model.create () in
        let x = Lp.Model.add_var m ~ub:10.0 "x" in
        let y = Lp.Model.add_var m ~ub:10.0 "y" in
        Lp.Model.add_eq m (v x) 4.0;
        Lp.Model.add_eq m (Lp.Expr.add (v x) (v y)) 6.0;
        Lp.Model.set_objective m Lp.Model.Minimize (v y);
        match Lp.Presolve.presolve m with
        | Lp.Presolve.Infeasible -> Alcotest.fail "feasible"
        | Lp.Presolve.Reduced p ->
          Alcotest.(check int) "both fixed" 2 p.Lp.Presolve.vars_fixed;
          let full = Lp.Presolve.restore p [||] in
          feq "x" 4.0 full.(0);
          feq "y" 2.0 full.(1));
    Alcotest.test_case "empty-row contradiction detected" `Quick (fun () ->
        let m = Lp.Model.create () in
        let x = Lp.Model.add_var m ~lb:1.0 ~ub:1.0 "x" in
        Lp.Model.add_ge m (v x) 2.0;
        Lp.Model.set_objective m Lp.Model.Minimize (v x);
        match Lp.Presolve.presolve m with
        | Lp.Presolve.Infeasible -> ()
        | Lp.Presolve.Reduced _ -> Alcotest.fail "expected infeasible");
    Alcotest.test_case "integer singleton bounds are rounded" `Quick (fun () ->
        let m = Lp.Model.create () in
        let x = Lp.Model.add_var m ~ub:10.0 ~kind:Lp.Model.Integer "x" in
        Lp.Model.add_le m (Lp.Expr.scale 2.0 (v x)) 7.0;  (* x <= 3.5 -> 3 *)
        Lp.Model.set_objective m Lp.Model.Maximize (v x);
        match Lp.Presolve.presolve m with
        | Lp.Presolve.Infeasible -> Alcotest.fail "feasible"
        | Lp.Presolve.Reduced p ->
          feq "rounded ub" 3.0
            (Lp.Model.var_ub p.Lp.Presolve.reduced
               (Lp.Model.var_of_id p.Lp.Presolve.reduced 0)));
  ]

let random_mip rng =
  let n = 2 + Workload.Rng.int rng 5 in
  let m = Lp.Model.create () in
  let vars =
    Array.init n (fun i ->
        let fixed = Workload.Rng.int rng 4 = 0 in
        let lb = if fixed then float_of_int (Workload.Rng.int rng 3) else 0.0 in
        let ub = if fixed then lb else float_of_int (1 + Workload.Rng.int rng 4) in
        let kind =
          if Workload.Rng.bool rng then Lp.Model.Integer else Lp.Model.Continuous
        in
        Lp.Model.add_var m ~lb ~ub ~kind (Printf.sprintf "x%d" i))
  in
  for _ = 1 to 1 + Workload.Rng.int rng 4 do
    let terms =
      Array.to_list vars
      |> List.filter_map (fun (x : Lp.Model.var) ->
             if Workload.Rng.int rng 3 = 0 then None
             else Some ((x :> int), float_of_int (Workload.Rng.int rng 5 - 1)))
    in
    Lp.Model.add_le m (Lp.Expr.of_terms terms)
      (float_of_int (Workload.Rng.int rng 10))
  done;
  Lp.Model.set_objective m Lp.Model.Maximize
    (Lp.Expr.of_terms
       (Array.to_list vars
       |> List.map (fun (x : Lp.Model.var) ->
              ((x :> int), float_of_int (Workload.Rng.int rng 5)))));
  m

let properties =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make
         ~name:"presolved optimum equals the original optimum" ~count:40
         QCheck2.Gen.(int_bound 100_000)
         (fun seed ->
           let rng = Workload.Rng.create (Int64.of_int (seed + 71)) in
           let m = random_mip rng in
           let original = Mip.Branch_bound.solve m in
           match Lp.Presolve.presolve m with
           | Lp.Presolve.Infeasible ->
             original.Mip.Branch_bound.status = Mip.Branch_bound.Infeasible
           | Lp.Presolve.Reduced p ->
             let reduced = Mip.Branch_bound.solve p.Lp.Presolve.reduced in
             (match
                ( original.Mip.Branch_bound.objective,
                  reduced.Mip.Branch_bound.objective )
              with
             | None, None -> true
             | Some a, Some b ->
               Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.abs a)
             | _ -> false)));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make
         ~name:"restored points are feasible in the original" ~count:40
         QCheck2.Gen.(int_bound 100_000)
         (fun seed ->
           let rng = Workload.Rng.create (Int64.of_int (seed + 171)) in
           let m = random_mip rng in
           match Lp.Presolve.presolve m with
           | Lp.Presolve.Infeasible -> true
           | Lp.Presolve.Reduced p ->
             let reduced = Mip.Branch_bound.solve p.Lp.Presolve.reduced in
             (match reduced.Mip.Branch_bound.incumbent with
             | None -> true
             | Some x ->
               let full = Lp.Presolve.restore p x in
               Lp.Std_form.is_feasible_point (Lp.Std_form.of_model m) full)));
  ]

let suite = [ ("lp.presolve", unit_tests @ properties) ]
