(* Workload generator and instance file format. *)

let scenario_tests =
  [
    Alcotest.test_case "paper parameters produce the paper substrate" `Quick
      (fun () ->
        let rng = Workload.Rng.create 1L in
        let inst = Tvnep.Scenario.generate rng Tvnep.Scenario.paper in
        let sub = inst.Tvnep.Instance.substrate in
        Alcotest.(check int) "20 nodes" 20 (Tvnep.Substrate.num_nodes sub);
        Alcotest.(check int) "62 directed links" 62 (Tvnep.Substrate.num_links sub);
        Alcotest.(check (float 1e-9)) "node cap" 3.5 (Tvnep.Substrate.node_cap sub 0);
        Alcotest.(check (float 1e-9)) "link cap" 5.0 (Tvnep.Substrate.link_cap sub 0);
        Alcotest.(check int) "20 requests" 20 (Tvnep.Instance.num_requests inst);
        Alcotest.(check bool) "fixed mappings" true
          (Tvnep.Instance.has_fixed_mappings inst);
        (* every request is a 5-node star with demands in [1,2] *)
        Array.iter
          (fun (r : Tvnep.Request.t) ->
            Alcotest.(check int) "5 vnodes" 5 (Tvnep.Request.num_vnodes r);
            Alcotest.(check int) "4 vlinks" 4 (Tvnep.Request.num_vlinks r);
            Array.iter
              (fun d ->
                Alcotest.(check bool) "demand range" true (d >= 1.0 && d < 2.0))
              r.Tvnep.Request.node_demand)
          inst.Tvnep.Instance.requests);
    Alcotest.test_case "deterministic per seed" `Quick (fun () ->
        let gen () =
          Tvnep.Scenario.generate (Workload.Rng.create 9L) Tvnep.Scenario.scaled
        in
        let a = gen () and b = gen () in
        Alcotest.(check string) "identical serialization"
          (Tvnep.Instance_io.to_string a)
          (Tvnep.Instance_io.to_string b));
    Alcotest.test_case "flexibility widens only the windows" `Quick (fun () ->
        let insts =
          Tvnep.Scenario.sweep ~seed:5L Tvnep.Scenario.scaled
            ~flexibilities:[ 0.0; 2.0 ]
        in
        match insts with
        | [ tight; loose ] ->
          Array.iteri
            (fun i (r0 : Tvnep.Request.t) ->
              let r2 = Tvnep.Instance.request loose i in
              Alcotest.(check (float 1e-9)) "same arrival"
                r0.Tvnep.Request.start_min r2.Tvnep.Request.start_min;
              Alcotest.(check (float 1e-9)) "same duration"
                r0.Tvnep.Request.duration r2.Tvnep.Request.duration;
              Alcotest.(check (float 1e-9)) "widened window" 2.0
                (Tvnep.Request.flexibility r2 -. Tvnep.Request.flexibility r0);
              (* demands also identical *)
              Alcotest.(check bool) "same demands" true
                (r0.Tvnep.Request.node_demand = r2.Tvnep.Request.node_demand))
            tight.Tvnep.Instance.requests
        | _ -> Alcotest.fail "two instances");
    Alcotest.test_case "durations respect the floor" `Quick (fun () ->
        let rng = Workload.Rng.create 31L in
        let p = { Tvnep.Scenario.scaled with min_duration = 1.0; num_requests = 30 } in
        let inst = Tvnep.Scenario.generate rng p in
        Array.iter
          (fun (r : Tvnep.Request.t) ->
            Alcotest.(check bool) "floor" true (r.Tvnep.Request.duration >= 1.0))
          inst.Tvnep.Instance.requests);
  ]

let io_tests =
  [
    Alcotest.test_case "roundtrip with fixed mappings" `Quick (fun () ->
        let rng = Workload.Rng.create 3L in
        let inst = Tvnep.Scenario.generate rng Tvnep.Scenario.scaled in
        let text = Tvnep.Instance_io.to_string inst in
        let back = Tvnep.Instance_io.of_string text in
        Alcotest.(check string) "fixpoint" text (Tvnep.Instance_io.to_string back));
    Alcotest.test_case "roundtrip without mappings" `Quick (fun () ->
        let g = Graphs.Generators.grid ~rows:2 ~cols:2 in
        let substrate = Tvnep.Substrate.uniform g ~node_cap:2.0 ~link_cap:3.0 in
        let rg = Graphs.Generators.star ~leaves:2 ~orientation:Graphs.Generators.To_center in
        let r =
          Tvnep.Request.make ~name:"free" ~graph:rg
            ~node_demand:[| 1.0; 1.5; 1.25 |] ~link_demand:[| 0.5; 0.75 |]
            ~duration:2.0 ~start_min:1.0 ~end_max:4.0
        in
        let inst =
          Tvnep.Instance.make ~substrate ~requests:[| r |] ~horizon:5.0 ()
        in
        let back = Tvnep.Instance_io.of_string (Tvnep.Instance_io.to_string inst) in
        Alcotest.(check bool) "no mappings" false
          (Tvnep.Instance.has_fixed_mappings back);
        Alcotest.(check string) "fixpoint"
          (Tvnep.Instance_io.to_string inst)
          (Tvnep.Instance_io.to_string back));
    Alcotest.test_case "comments and blank lines ignored" `Quick (fun () ->
        let text =
          "# a comment\n\ntvnep 1\nhorizon 2.0\nsubstrate-nodes 2\n\
           node-cap 0 1.0\nnode-cap 1 1.0   # inline\nlink 0 1 1.0\n\
           request r duration 1.0 window 0.0 2.0\n  vnode 0 0.5\n\
           vnode 1 0.5\n  vlink 0 1 0.25\nend\n"
        in
        let inst = Tvnep.Instance_io.of_string text in
        Alcotest.(check int) "one request" 1 (Tvnep.Instance.num_requests inst));
    Alcotest.test_case "parse errors carry line numbers" `Quick (fun () ->
        let bad = "tvnep 1\nhorizon oops\n" in
        (match Tvnep.Instance_io.of_string bad with
        | exception Tvnep.Instance_io.Parse_error (2, _) -> ()
        | exception Tvnep.Instance_io.Parse_error (n, m) ->
          Alcotest.fail (Printf.sprintf "wrong line %d: %s" n m)
        | _ -> Alcotest.fail "expected parse error"));
    Alcotest.test_case "unterminated request rejected" `Quick (fun () ->
        let bad =
          "tvnep 1\nhorizon 2.0\nsubstrate-nodes 1\nnode-cap 0 1.0\n\
           request r duration 1.0 window 0.0 2.0\n  vnode 0 0.5\n"
        in
        (match Tvnep.Instance_io.of_string bad with
        | exception Tvnep.Instance_io.Parse_error _ -> ()
        | _ -> Alcotest.fail "expected parse error"));
    Alcotest.test_case "partial host mapping rejected" `Quick (fun () ->
        let bad =
          "tvnep 1\nhorizon 2.0\nsubstrate-nodes 2\nnode-cap 0 1.0\n\
           node-cap 1 1.0\nlink 0 1 1.0\n\
           request r duration 1.0 window 0.0 2.0\n  vnode 0 0.5 host 0\n\
           vnode 1 0.5\n  vlink 0 1 0.25\nend\n"
        in
        (match Tvnep.Instance_io.of_string bad with
        | exception Tvnep.Instance_io.Parse_error _ -> ()
        | _ -> Alcotest.fail "expected parse error"));
    Alcotest.test_case "save/load through a file" `Quick (fun () ->
        let rng = Workload.Rng.create 21L in
        let inst = Tvnep.Scenario.generate rng Tvnep.Scenario.scaled in
        let path = Filename.temp_file "tvnep" ".inst" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Tvnep.Instance_io.save path inst;
            let back = Tvnep.Instance_io.load path in
            Alcotest.(check string) "roundtrip"
              (Tvnep.Instance_io.to_string inst)
              (Tvnep.Instance_io.to_string back)));
  ]

let suite =
  [ ("tvnep.scenario", scenario_tests); ("tvnep.instance_io", io_tests) ]
