examples/batch_admission.mli:
