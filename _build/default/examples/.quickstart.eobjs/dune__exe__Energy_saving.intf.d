examples/energy_saving.mli:
