examples/batch_admission.ml: Array Filename Float Mip Printf Sys Tvnep Workload
