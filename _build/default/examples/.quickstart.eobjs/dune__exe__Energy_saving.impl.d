examples/energy_saving.ml: Mip Printf Tvnep
