examples/datacenter_day.ml: Array Int64 List Mip Printf Statsutil Sys Tvnep
