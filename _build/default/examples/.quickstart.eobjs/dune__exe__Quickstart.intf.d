examples/quickstart.mli:
