examples/quickstart.ml: Array Graphs Mip Printf Tvnep
