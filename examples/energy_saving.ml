(* Energy saving by disabling links (Section IV-E objective 4): given a
   fixed set of requests that must all be embedded, schedule and route
   them so that as many substrate links as possible carry no traffic at
   all over the whole horizon and can be switched off.

   The experiment solves the same workload twice — once with no temporal
   flexibility and once with generous flexibility — showing that the
   freedom to schedule lets the provider concentrate traffic on fewer
   links.

   Run with:  dune exec examples/energy_saving.exe *)

let solve_disable inst =
  Tvnep.Solver.run inst
    (Tvnep.Solver.Options.make ~objective:Tvnep.Objective.Disable_links
       ~mip:{ Mip.Branch_bound.default_params with time_limit = 30.0 } ())

let () =
  (* Small workload so both solves complete quickly; lighter demands so
     that full embedding is feasible even without flexibility. *)
  let params =
    { Tvnep.Scenario.scaled with
      num_requests = 3;
      demand_lo = 0.4;
      demand_hi = 0.8 }
  in
  let instances =
    Tvnep.Scenario.sweep ~seed:7L params ~flexibilities:[ 0.0; 3.0 ]
  in
  match instances with
  | [ rigid; flexible ] ->
    let total_links =
      Tvnep.Substrate.num_links rigid.Tvnep.Instance.substrate
    in
    let report label inst =
      let o = solve_disable inst in
      (match o.Tvnep.Solver.objective with
      | Some v ->
        Printf.printf "%-18s %2.0f of %d links can be powered off (%s)\n"
          label v total_links
          (Tvnep.Solver.status_to_string o.Tvnep.Solver.status)
      | None ->
        Printf.printf "%-18s no feasible full embedding (%s)\n" label
          (Tvnep.Solver.status_to_string o.Tvnep.Solver.status));
      o.Tvnep.Solver.objective
    in
    let rigid_links = report "no flexibility:" rigid in
    let flexible_links = report "3h flexibility:" flexible in
    (match (rigid_links, flexible_links) with
    | Some a, Some b when b >= a ->
      Printf.printf
        "\nTemporal flexibility lets the scheduler serialize requests and\n\
         keep %g extra link(s) dark.\n"
        (b -. a)
    | _ -> ())
  | _ -> assert false
