(* A "day in a datacenter" (the paper's motivating scenario, scaled):
   requests arrive over the day via a Poisson process, each a small
   virtual cluster with a Weibull-distributed runtime.  We sweep the
   temporal flexibility granted to the tenants and report how acceptance
   and provider revenue grow — the paper's headline observation that
   "already little time flexibilities can improve the overall system
   performance significantly".

   Run with:  dune exec examples/datacenter_day.exe [-- seed] *)

let () =
  let seed =
    if Array.length Sys.argv > 1 then Int64.of_string Sys.argv.(1) else 2024L
  in
  let params = { Tvnep.Scenario.scaled with num_requests = 5 } in
  let flexibilities = [ 0.0; 0.5; 1.0; 2.0; 3.0 ] in
  let instances = Tvnep.Scenario.sweep ~seed params ~flexibilities in
  Printf.printf
    "One workload (%d requests on a %dx%d grid), increasing flexibility:\n\n"
    params.Tvnep.Scenario.num_requests params.Tvnep.Scenario.grid_rows
    params.Tvnep.Scenario.grid_cols;
  let table =
    Statsutil.Table.create
      ~headers:
        [ "flex (h)"; "exact accepted"; "exact revenue"; "greedy accepted";
          "greedy revenue"; "exact status" ]
  in
  List.iter2
    (fun flex inst ->
      let exact =
        Tvnep.Solver.run inst
          (Tvnep.Solver.Options.make
             ~mip:{ Mip.Branch_bound.default_params with time_limit = 30.0 }
             ())
      in
      let greedy_sol, _ = Tvnep.Greedy.run inst in
      let exact_accepted, exact_rev =
        match exact.Tvnep.Solver.solution with
        | Some sol ->
          ( Tvnep.Solution.num_accepted sol,
            Tvnep.Solution.access_control_value inst sol )
        | None -> (0, 0.0)
      in
      Statsutil.Table.add_row table
        [
          Printf.sprintf "%.1f" flex;
          string_of_int exact_accepted;
          Printf.sprintf "%.2f" exact_rev;
          string_of_int (Tvnep.Solution.num_accepted greedy_sol);
          Printf.sprintf "%.2f" greedy_sol.Tvnep.Solution.objective;
          Tvnep.Solver.status_to_string exact.Tvnep.Solver.status;
        ])
    flexibilities instances;
  Statsutil.Table.print table;
  print_newline ();
  print_endline
    "Revenue is the access-control objective of Section IV-E: each accepted\n\
     request contributes duration x total node demand."
