(* Online-style batch admission with the greedy cΣ_A^G (Section V):
   requests are processed in arrival order, each admitted at the earliest
   feasible time, never revisiting earlier decisions — the regime a
   provider faces when answers must come in milliseconds rather than
   after a full MIP solve.

   The example also round-trips the generated instance through the text
   format (see Tvnep.Instance_io) so it can be archived and re-solved
   offline, and compares the greedy's revenue to the exact optimum.

   Run with:  dune exec examples/batch_admission.exe *)

let () =
  let params = { Tvnep.Scenario.scaled with num_requests = 6 } in
  let rng = Workload.Rng.create 99L in
  let inst = Tvnep.Scenario.generate rng { params with flexibility = 2.0 } in

  (* Archive the instance; a provider would log the day's workload. *)
  let path = Filename.temp_file "datacenter_day" ".tvnep" in
  Tvnep.Instance_io.save path inst;
  Printf.printf "instance archived to %s (%d bytes)\n\n" path
    (let ic = open_in path in
     let n = in_channel_length ic in
     close_in ic;
     n);
  let inst = Tvnep.Instance_io.load path in
  Sys.remove path;

  let sol, stats = Tvnep.Greedy.run inst in
  Printf.printf "greedy admission (in arrival order):\n";
  Array.iteri
    (fun i (a : Tvnep.Solution.assignment) ->
      let r = Tvnep.Instance.request inst i in
      if a.Tvnep.Solution.accepted then
        Printf.printf "  %-4s admitted  [%.2f, %.2f]\n" r.Tvnep.Request.name
          a.Tvnep.Solution.t_start a.Tvnep.Solution.t_end
      else Printf.printf "  %-4s rejected\n" r.Tvnep.Request.name)
    sol.Tvnep.Solution.assignments;
  Printf.printf
    "\n%d/%d admitted, revenue %.2f — %d LPs, %d candidate slots, %.0f ms\n"
    (Tvnep.Solution.num_accepted sol)
    (Tvnep.Instance.num_requests inst)
    sol.Tvnep.Solution.objective stats.Tvnep.Greedy.lp_solves
    stats.Tvnep.Greedy.candidates_tried
    (stats.Tvnep.Greedy.runtime *. 1000.0);
  assert (Tvnep.Validator.is_feasible inst sol);

  (* How much revenue did speed cost?  Compare with the exact cΣ solve,
     seeded with the greedy solution (the combination the paper's
     conclusion suggests). *)
  let exact =
    Tvnep.Solver.run inst
      (Tvnep.Solver.Options.make ~seed_with_greedy:true
         ~mip:{ Mip.Branch_bound.default_params with time_limit = 60.0 } ())
  in
  match exact.Tvnep.Solver.objective with
  | Some opt ->
    Printf.printf
      "exact cΣ optimum: %.2f (%s) — greedy is within %.1f%%\n" opt
      (Tvnep.Solver.status_to_string exact.Tvnep.Solver.status)
      (100.0 *. (opt -. sol.Tvnep.Solution.objective) /. Float.max 1e-9 opt)
  | None -> print_endline "exact solver found no solution in its budget"
