(* Quickstart: build a tiny TVNEP instance by hand, solve it exactly with
   the cΣ-Model and print the resulting schedule.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* Substrate: a 2x2 grid datacenter; every node offers 2.0 units of
     compute, every directed link 1.0 unit of bandwidth. *)
  let grid = Graphs.Generators.grid ~rows:2 ~cols:2 in
  let substrate = Tvnep.Substrate.uniform grid ~node_cap:2.0 ~link_cap:1.0 in

  (* Two virtual networks, each a master with one worker (a 2-node star).
     Both want the same hosts, and each fully loads its host pair — they
     can never run at the same time. *)
  let vnet name ~start_min ~end_max =
    let topology =
      Graphs.Generators.star ~leaves:1 ~orientation:Graphs.Generators.From_center
    in
    Tvnep.Request.make ~name ~graph:topology ~node_demand:[| 2.0; 2.0 |]
      ~link_demand:[| 0.8 |] ~duration:1.0 ~start_min ~end_max
  in
  (* One hour of temporal flexibility each: window = duration + 1. *)
  let requests =
    [| vnet "analytics" ~start_min:0.0 ~end_max:2.0;
       vnet "backup" ~start_min:0.0 ~end_max:2.0 |]
  in
  (* Both pinned to hosts 0 (master) and 1 (worker), as in the paper's
     evaluation where node mappings are fixed a priori. *)
  let instance =
    Tvnep.Instance.make
      ~node_mappings:[| [| 0; 1 |]; [| 0; 1 |] |]
      ~substrate ~requests ~horizon:2.0 ()
  in

  (* Solve with the compact state model and the access-control objective
     (maximize accepted revenue). *)
  let outcome = Tvnep.Solver.run instance Tvnep.Solver.Options.default in
  Printf.printf "status: %s\n"
    (Tvnep.Solver.status_to_string outcome.Tvnep.Solver.status);
  (match outcome.Tvnep.Solver.objective with
  | Some v -> Printf.printf "revenue: %g\n" v
  | None -> print_endline "no solution found");
  match outcome.Tvnep.Solver.solution with
  | None -> ()
  | Some sol ->
    Array.iteri
      (fun i (a : Tvnep.Solution.assignment) ->
        let r = Tvnep.Instance.request instance i in
        if a.Tvnep.Solution.accepted then
          Printf.printf "  %-10s accepted, runs [%.2f, %.2f]\n"
            r.Tvnep.Request.name a.Tvnep.Solution.t_start a.Tvnep.Solution.t_end
        else Printf.printf "  %-10s rejected\n" r.Tvnep.Request.name)
      sol.Tvnep.Solution.assignments;
    (* Cross-check with the independent validator. *)
    Printf.printf "validator: %s\n" (Tvnep.Validator.explain instance sol)
